//! Statistics reported by the timing simulator.

use dvi_bpred::PredictorStats;
use dvi_core::DviStats;
use dvi_mem::HierarchyStats;
use std::fmt;

/// Everything the paper's evaluation needs from one timing-simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Original program instructions completed: committed instructions plus
    /// eliminated saves/restores, excluding E-DVI annotations — the paper's
    /// "true measure of the work done by the program".
    pub program_instrs: u64,
    /// Instructions actually committed from the window.
    pub committed_entries: u64,
    /// Instructions fetched (including E-DVI annotations and instructions
    /// later eliminated).
    pub fetched_instrs: u64,
    /// E-DVI `kill` instructions fetched (cycle overhead only).
    pub fetched_kills: u64,
    /// Dynamic program memory references (loads + stores, including
    /// eliminated saves/restores).
    pub mem_refs: u64,
    /// Rename stalls because the free list was empty.
    pub rename_stalls_no_reg: u64,
    /// Rename stalls because the instruction window was full.
    pub rename_stalls_no_window: u64,
    /// Dead-value-information counters.
    pub dvi: DviStats,
    /// Branch predictor counters.
    pub branch: PredictorStats,
    /// Cache-hierarchy counters.
    pub memory: HierarchyStats,
    /// Largest number of physical registers simultaneously in use
    /// (mapped + in-flight destinations).
    pub peak_phys_regs_used: usize,
    /// Whether the run was aborted by the forward-progress watchdog: no
    /// instruction committed for `PROGRESS_LIMIT` consecutive cycles. This
    /// indicates a modelling bug, and every other counter in the struct
    /// describes a *partial* run — consumers must check this flag instead
    /// of trusting silently truncated statistics.
    pub deadlocked: bool,
    /// The watchdog's structured diagnosis when [`SimStats::deadlocked`]
    /// is set: where the pipeline stalled and what it was holding. `None`
    /// on healthy runs. The report is a pure function of the simulated
    /// machine (no host state), so statistics stay bit-identical across
    /// serial, batched and parallel execution even for deadlocked members.
    pub deadlock: Option<DeadlockReport>,
    /// Dispatch-group fusion fast-path coverage (see [`FusionCounters`]).
    /// Host-policy observability, not modelled-machine state: excluded
    /// from equality so fused and unfused runs of the same member compare
    /// bit-identical.
    pub fusion: FusionCounters,
}

/// How often the fused dispatch fast path carried the run versus falling
/// back to the cycle-accurate slow loop. These counters describe the *host*
/// execution strategy (which code path dispatched a record), never the
/// simulated machine — a grid that mostly falls back is *visible* here
/// (service `/metrics`, CLI `status`) instead of silently slow.
#[derive(Debug, Clone, Copy, Default)]
pub struct FusionCounters {
    /// Fusion groups dispatched whole by the fast path.
    pub groups: u64,
    /// Records dispatched by the fast path.
    pub fused_records: u64,
    /// Records dispatched (or consumed at decode) by the fallback slow
    /// loop while a fusion table was attached.
    pub fallback_records: u64,
}

impl FusionCounters {
    /// Fraction of fusion-eligible dispatch work carried by the fast path,
    /// in percent (0 when nothing dispatched).
    #[must_use]
    pub fn coverage_pct(&self) -> f64 {
        let total = self.fused_records + self.fallback_records;
        if total == 0 {
            0.0
        } else {
            self.fused_records as f64 / total as f64 * 100.0
        }
    }
}

// Host-policy counters: two runs of the same member must compare equal no
// matter which dispatch path executed them, so equality ignores the struct
// entirely (the modelled-machine counters around it do the comparing).
impl PartialEq for FusionCounters {
    fn eq(&self, _other: &FusionCounters) -> bool {
        true
    }
}

impl Eq for FusionCounters {}

/// The pipeline stage that last made forward progress before a watchdog
/// abort — the first question a deadlock triage asks (a stuck *commit*
/// with a full window is a scheduling bug; a stuck *fetch* with an empty
/// window is a front-end bug).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgressStage {
    /// An instruction last left the window (committed) after the last
    /// fetch advanced: the back end was the last thing alive.
    Commit,
    /// Fetch advanced after the last commit: the front end was still
    /// pulling records while the window starved.
    Fetch,
}

/// What the forward-progress watchdog saw when it aborted a run (attached
/// to [`SimStats::deadlock`]). Replaces the former bare `assert!` /
/// boolean with a structured diagnosis that travels with the statistics,
/// so a sweep can report *which* member wedged and why instead of
/// aborting every sibling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadlockReport {
    /// Cycle of the last committed instruction (0 when nothing ever
    /// committed).
    pub stall_cycle: u64,
    /// Cycle at which the watchdog fired.
    pub detected_cycle: u64,
    /// Instructions in flight in the window at detection.
    pub window_occupancy: usize,
    /// Trace record sequence number at the window head, when the window
    /// was non-empty (identifies the wedged instruction in the trace).
    pub head_seq: Option<u64>,
    /// The stage that last made progress before the stall.
    pub last_stage: ProgressStage,
}

impl fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no commit since cycle {} (detected at cycle {}, {} in flight",
            self.stall_cycle, self.detected_cycle, self.window_occupancy
        )?;
        if let Some(seq) = self.head_seq {
            write!(f, ", head record {seq}")?;
        }
        let stage = match self.last_stage {
            ProgressStage::Commit => "commit",
            ProgressStage::Fetch => "fetch",
        };
        write!(f, ", last progress in {stage})")
    }
}

impl SimStats {
    /// Instructions per cycle, the paper's primary metric.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.program_instrs as f64 / self.cycles as f64
        }
    }

    /// Saves+restores eliminated as a percentage of all saves+restores
    /// (Figure 9a).
    #[must_use]
    pub fn pct_save_restores_eliminated(&self) -> f64 {
        self.dvi.pct_of_save_restores()
    }

    /// Saves+restores eliminated as a percentage of all memory references
    /// (Figure 9b).
    #[must_use]
    pub fn pct_mem_refs_eliminated(&self) -> f64 {
        self.dvi.pct_of_mem_refs(self.mem_refs)
    }

    /// Saves+restores eliminated as a percentage of all program
    /// instructions (Figure 9c).
    #[must_use]
    pub fn pct_instrs_eliminated(&self) -> f64 {
        self.dvi.pct_of_instructions(self.program_instrs)
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} instructions in {} cycles (IPC {:.3}), {:.1}% of saves/restores eliminated",
            self.program_instrs,
            self.cycles,
            self.ipc(),
            self.pct_save_restores_eliminated()
        )?;
        if self.deadlocked {
            match &self.deadlock {
                Some(report) => write!(f, " [DEADLOCKED: partial run; {report}]")?,
                None => write!(f, " [DEADLOCKED: partial run]")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_handles_zero_cycles() {
        assert_eq!(SimStats::default().ipc(), 0.0);
    }

    #[test]
    fn ipc_is_instructions_over_cycles() {
        let s = SimStats { cycles: 1000, program_instrs: 1800, ..SimStats::default() };
        assert!((s.ipc() - 1.8).abs() < 1e-12);
        assert!(s.to_string().contains("IPC"));
    }

    #[test]
    fn deadlock_report_rides_the_display() {
        let mut s = SimStats { cycles: 100_500, program_instrs: 10, ..SimStats::default() };
        s.deadlocked = true;
        s.deadlock = Some(DeadlockReport {
            stall_cycle: 500,
            detected_cycle: 100_501,
            window_occupancy: 3,
            head_seq: Some(42),
            last_stage: ProgressStage::Commit,
        });
        let text = s.to_string();
        assert!(text.contains("DEADLOCKED"), "{text}");
        assert!(text.contains("head record 42"), "{text}");
        assert!(text.contains("last progress in commit"), "{text}");
    }

    #[test]
    fn elimination_percentages_use_the_right_denominators() {
        let mut s =
            SimStats { cycles: 10, program_instrs: 1000, mem_refs: 300, ..SimStats::default() };
        s.dvi.saves_seen = 50;
        s.dvi.restores_seen = 50;
        s.dvi.saves_eliminated = 25;
        s.dvi.restores_eliminated = 25;
        assert!((s.pct_save_restores_eliminated() - 50.0).abs() < 1e-9);
        assert!((s.pct_mem_refs_eliminated() - (50.0 / 300.0 * 100.0)).abs() < 1e-9);
        assert!((s.pct_instrs_eliminated() - 5.0).abs() < 1e-9);
    }
}
