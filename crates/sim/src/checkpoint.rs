//! Durable sweep checkpoints.
//!
//! A [`SweepCheckpoint`] is the on-disk image of a
//! [`crate::batch::SweepRunner`]'s progress: the outcome of every finished
//! member plus the trace position of every in-flight one, bound to the
//! fingerprints of the captured trace and the member configurations it was
//! taken from. The runner writes one after every scheduling turn
//! ([`crate::batch::SweepRunner::with_checkpoint`]) through the
//! checksummed artifact container ([`dvi_program::artifact`]) with an
//! atomic temp-file/rename, so a crash at any instant leaves either the
//! previous or the new snapshot on disk, never a torn one.
//!
//! Resume ([`crate::batch::SweepRunner::resume`]) restores finished
//! members verbatim and re-runs interrupted ones from record 0. That is
//! not an approximation: member statistics are a pure function of
//! (configuration, trace, shared products), so the resumed run's final
//! outcomes are **bit-identical** to the uninterrupted run's — the
//! recorded in-flight positions are diagnostic (how far the sweep got),
//! not replay state. `tests/fault_tolerance.rs` locks the equivalence by
//! killing sweeps at every turn boundary and resuming them.

use crate::batch::MemberOutcome;
use crate::config::SimConfig;
use crate::stats::{DeadlockReport, ProgressStage, SimStats};
use dvi_bpred::PredictorStats;
use dvi_core::DviStats;
use dvi_mem::{CacheStats, HierarchyStats};
use dvi_program::artifact::{xxh64, ArtifactReader, ArtifactWriter, ByteReader, ByteWriter};
use dvi_program::ArtifactError;
use std::path::Path;

/// Artifact container identity of a sweep checkpoint.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"DVISWPCK";
/// Current checkpoint artifact version. Bump on any layout change; old
/// readers reject newer files with [`ArtifactError::VersionSkew`] instead
/// of misparsing them.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Section tags inside a checkpoint artifact.
mod section {
    /// Trace fingerprint, turn counter, member count.
    pub const META: u32 = 1;
    /// One section per member, in grid order.
    pub const MEMBER: u32 = 2;
}

/// The persisted progress of one sweep (see the module documentation).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCheckpoint {
    /// [`dvi_program::CapturedTrace::fingerprint`] of the sweep's trace;
    /// resume refuses a snapshot taken from a different trace.
    pub trace_fingerprint: u64,
    /// Scheduling turns completed when the snapshot was taken.
    pub turns: u64,
    /// Per-member progress, in grid order.
    pub members: Vec<MemberCheckpoint>,
}

/// One member's entry in a [`SweepCheckpoint`].
#[derive(Debug, Clone, PartialEq)]
pub struct MemberCheckpoint {
    /// Fingerprint of the member's [`SimConfig`]
    /// ([`config_fingerprint`]); resume refuses a snapshot whose grid
    /// doesn't match.
    pub config_fingerprint: u64,
    /// Where the member was when the snapshot was taken.
    pub state: MemberCheckpointState,
}

/// A checkpointed member's progress.
#[derive(Debug, Clone, PartialEq)]
pub enum MemberCheckpointState {
    /// Still running (or not yet scheduled); `fetched` records consumed so
    /// far. Diagnostic only — resume re-runs the member from record 0,
    /// bit-identically (see the module documentation).
    InFlight {
        /// Trace records the member had fetched.
        fetched: u64,
    },
    /// Finished, with the outcome to restore verbatim.
    Done(Box<MemberOutcome>),
}

/// Identity of a member configuration for checkpoint binding, via the
/// configuration's complete `Debug` rendering: any field change —
/// including future fields — changes the fingerprint, which is exactly
/// the staleness check resume needs.
#[must_use]
pub fn config_fingerprint(config: &SimConfig) -> u64 {
    xxh64(format!("{config:?}").as_bytes(), 0)
}

impl SweepCheckpoint {
    /// Serializes the snapshot into an artifact container.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        self.build().to_bytes()
    }

    /// Atomically writes the snapshot to `path` (temp file + rename: a
    /// kill mid-write leaves the previous snapshot intact).
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Io`] on filesystem failure.
    pub fn save(&self, path: &Path) -> Result<(), ArtifactError> {
        self.build().write_atomic(path)
    }

    fn build(&self) -> ArtifactWriter {
        let mut w = ArtifactWriter::new(CHECKPOINT_MAGIC, CHECKPOINT_VERSION);
        let mut meta = ByteWriter::new();
        meta.put_u64(self.trace_fingerprint);
        meta.put_u64(self.turns);
        meta.put_u64(self.members.len() as u64);
        w.section(section::META, meta.into_bytes());
        for member in &self.members {
            let mut b = ByteWriter::new();
            b.put_u64(member.config_fingerprint);
            match &member.state {
                MemberCheckpointState::InFlight { fetched } => {
                    b.put_u8(0);
                    b.put_u64(*fetched);
                }
                MemberCheckpointState::Done(outcome) => {
                    b.put_u8(1);
                    write_outcome(&mut b, outcome);
                }
            }
            w.section(section::MEMBER, b.into_bytes());
        }
        w
    }

    /// Parses a snapshot serialized by [`SweepCheckpoint::to_bytes`],
    /// verifying the container checksums.
    ///
    /// # Errors
    ///
    /// Any [`ArtifactError`] from the container (bad magic, version skew,
    /// truncation, checksum mismatch, malformed payload).
    pub fn from_bytes(bytes: &[u8]) -> Result<SweepCheckpoint, ArtifactError> {
        let reader = ArtifactReader::parse(bytes, CHECKPOINT_MAGIC, CHECKPOINT_VERSION)?;
        let mut meta = ByteReader::new(reader.section(section::META)?, "checkpoint meta");
        let trace_fingerprint = meta.u64()?;
        let turns = meta.u64()?;
        let member_count = meta.count()?;
        meta.finish()?;
        let mut members = Vec::with_capacity(member_count);
        for payload in reader.sections_with_tag(section::MEMBER) {
            let mut b = ByteReader::new(payload, "checkpoint member");
            let config_fingerprint = b.u64()?;
            let state = match b.u8()? {
                0 => MemberCheckpointState::InFlight { fetched: b.u64()? },
                1 => MemberCheckpointState::Done(Box::new(read_outcome(&mut b)?)),
                tag => {
                    return Err(ArtifactError::Malformed {
                        context: format!("checkpoint member state tag {tag}"),
                    })
                }
            };
            b.finish()?;
            members.push(MemberCheckpoint { config_fingerprint, state });
        }
        if members.len() != member_count {
            return Err(ArtifactError::Malformed {
                context: format!(
                    "checkpoint meta promises {member_count} members, found {}",
                    members.len()
                ),
            });
        }
        Ok(SweepCheckpoint { trace_fingerprint, turns, members })
    }

    /// Loads a snapshot saved by [`SweepCheckpoint::save`].
    ///
    /// # Errors
    ///
    /// As [`SweepCheckpoint::from_bytes`], plus [`ArtifactError::Io`].
    pub fn load(path: &Path) -> Result<SweepCheckpoint, ArtifactError> {
        let bytes = std::fs::read(path)
            .map_err(|e| ArtifactError::Io(format!("reading {}: {e}", path.display())))?;
        SweepCheckpoint::from_bytes(&bytes)
    }
}

/// Serializes a member outcome (tag byte + payload) into a section
/// payload. Public because the sweep service's result cache memoizes
/// per-member outcomes on disk in exactly the checkpoint encoding — one
/// serializer means a cache entry and a checkpoint member can never
/// disagree about what a stored outcome looks like.
pub fn write_outcome(w: &mut ByteWriter, outcome: &MemberOutcome) {
    match outcome {
        MemberOutcome::Ok(stats) => {
            w.put_u8(0);
            write_stats(w, stats);
        }
        MemberOutcome::Degraded { stats, reason } => {
            w.put_u8(1);
            write_stats(w, stats);
            write_string(w, reason);
        }
        MemberOutcome::Deadlocked { partial, .. } => {
            // The report is embedded in `partial.deadlock`; storing it
            // once keeps the two from ever disagreeing on disk.
            w.put_u8(2);
            write_stats(w, partial);
        }
        MemberOutcome::Panicked { payload } => {
            w.put_u8(3);
            write_string(w, payload);
        }
    }
}

/// Reads an outcome written by [`write_outcome`].
///
/// # Errors
///
/// [`ArtifactError::TruncatedArtifact`] when the payload ends early and
/// [`ArtifactError::Malformed`] on an unknown outcome tag or an internally
/// inconsistent payload.
pub fn read_outcome(r: &mut ByteReader<'_>) -> Result<MemberOutcome, ArtifactError> {
    match r.u8()? {
        0 => Ok(MemberOutcome::Ok(read_stats(r)?)),
        1 => {
            let stats = read_stats(r)?;
            let reason = read_string(r)?;
            Ok(MemberOutcome::Degraded { stats, reason })
        }
        2 => {
            let partial = read_stats(r)?;
            let report = partial.deadlock.ok_or_else(|| ArtifactError::Malformed {
                context: "deadlocked outcome without a deadlock report".into(),
            })?;
            Ok(MemberOutcome::Deadlocked { partial, report })
        }
        3 => Ok(MemberOutcome::Panicked { payload: read_string(r)? }),
        tag => Err(ArtifactError::Malformed { context: format!("member outcome tag {tag}") }),
    }
}

fn write_string(w: &mut ByteWriter, s: &str) {
    w.put_str(s);
}

fn read_string(r: &mut ByteReader<'_>) -> Result<String, ArtifactError> {
    r.str()
}

/// Serializes a complete [`SimStats`] field by field (fixed-width
/// little-endian, no padding). Every field must round-trip exactly:
/// resume equivalence is asserted with `==` over the whole struct.
fn write_stats(w: &mut ByteWriter, s: &SimStats) {
    w.put_u64(s.cycles);
    w.put_u64(s.program_instrs);
    w.put_u64(s.committed_entries);
    w.put_u64(s.fetched_instrs);
    w.put_u64(s.fetched_kills);
    w.put_u64(s.mem_refs);
    w.put_u64(s.rename_stalls_no_reg);
    w.put_u64(s.rename_stalls_no_window);
    w.put_u64(s.dvi.saves_seen);
    w.put_u64(s.dvi.restores_seen);
    w.put_u64(s.dvi.saves_eliminated);
    w.put_u64(s.dvi.restores_eliminated);
    w.put_u64(s.dvi.edvi_instructions);
    w.put_u64(s.dvi.edvi_regs_killed);
    w.put_u64(s.dvi.idvi_regs_killed);
    w.put_u64(s.dvi.phys_regs_reclaimed_early);
    w.put_u64(s.branch.direction_predictions);
    w.put_u64(s.branch.direction_mispredictions);
    w.put_u64(s.branch.return_predictions);
    w.put_u64(s.branch.return_mispredictions);
    write_cache_stats(w, s.memory.l1i);
    write_cache_stats(w, s.memory.l1d);
    write_cache_stats(w, s.memory.l2);
    w.put_u64(s.peak_phys_regs_used as u64);
    w.put_bool(s.deadlocked);
    match &s.deadlock {
        None => w.put_u8(0),
        Some(report) => {
            w.put_u8(1);
            w.put_u64(report.stall_cycle);
            w.put_u64(report.detected_cycle);
            w.put_u64(report.window_occupancy as u64);
            match report.head_seq {
                None => w.put_u8(0),
                Some(seq) => {
                    w.put_u8(1);
                    w.put_u64(seq);
                }
            }
            w.put_u8(match report.last_stage {
                ProgressStage::Commit => 0,
                ProgressStage::Fetch => 1,
            });
        }
    }
}

/// Reads statistics written by [`write_stats`].
fn read_stats(r: &mut ByteReader<'_>) -> Result<SimStats, ArtifactError> {
    let mut s = SimStats {
        cycles: r.u64()?,
        program_instrs: r.u64()?,
        committed_entries: r.u64()?,
        fetched_instrs: r.u64()?,
        fetched_kills: r.u64()?,
        mem_refs: r.u64()?,
        rename_stalls_no_reg: r.u64()?,
        rename_stalls_no_window: r.u64()?,
        ..SimStats::default()
    };
    s.dvi = DviStats {
        saves_seen: r.u64()?,
        restores_seen: r.u64()?,
        saves_eliminated: r.u64()?,
        restores_eliminated: r.u64()?,
        edvi_instructions: r.u64()?,
        edvi_regs_killed: r.u64()?,
        idvi_regs_killed: r.u64()?,
        phys_regs_reclaimed_early: r.u64()?,
    };
    s.branch = PredictorStats {
        direction_predictions: r.u64()?,
        direction_mispredictions: r.u64()?,
        return_predictions: r.u64()?,
        return_mispredictions: r.u64()?,
    };
    s.memory = HierarchyStats {
        l1i: read_cache_stats(r)?,
        l1d: read_cache_stats(r)?,
        l2: read_cache_stats(r)?,
    };
    s.peak_phys_regs_used = r.count()?;
    s.deadlocked = r.bool()?;
    s.deadlock = match r.u8()? {
        0 => None,
        1 => {
            let stall_cycle = r.u64()?;
            let detected_cycle = r.u64()?;
            let window_occupancy = r.count()?;
            let head_seq = match r.u8()? {
                0 => None,
                1 => Some(r.u64()?),
                tag => {
                    return Err(ArtifactError::Malformed { context: format!("head_seq tag {tag}") })
                }
            };
            let last_stage = match r.u8()? {
                0 => ProgressStage::Commit,
                1 => ProgressStage::Fetch,
                tag => {
                    return Err(ArtifactError::Malformed {
                        context: format!("progress stage tag {tag}"),
                    })
                }
            };
            Some(DeadlockReport {
                stall_cycle,
                detected_cycle,
                window_occupancy,
                head_seq,
                last_stage,
            })
        }
        tag => {
            return Err(ArtifactError::Malformed { context: format!("deadlock report tag {tag}") })
        }
    };
    Ok(s)
}

fn write_cache_stats(w: &mut ByteWriter, c: CacheStats) {
    w.put_u64(c.accesses);
    w.put_u64(c.misses);
}

fn read_cache_stats(r: &mut ByteReader<'_>) -> Result<CacheStats, ArtifactError> {
    Ok(CacheStats { accesses: r.u64()?, misses: r.u64()? })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stats(seed: u64) -> SimStats {
        let mut s = SimStats {
            cycles: seed.wrapping_mul(977) + 3,
            program_instrs: seed + 17,
            committed_entries: seed + 11,
            fetched_instrs: seed + 23,
            mem_refs: seed + 5,
            ..SimStats::default()
        };
        s.dvi.saves_eliminated = seed;
        s.branch.direction_predictions = seed * 2;
        s.memory.l1d = CacheStats { accesses: seed + 100, misses: seed / 2 };
        s.peak_phys_regs_used = (seed as usize % 64) + 32;
        s
    }

    #[test]
    fn checkpoint_roundtrips_every_outcome_kind() {
        let mut deadlocked = sample_stats(7);
        deadlocked.deadlocked = true;
        deadlocked.deadlock = Some(DeadlockReport {
            stall_cycle: 120,
            detected_cycle: 100_121,
            window_occupancy: 5,
            head_seq: Some(99),
            last_stage: ProgressStage::Fetch,
        });
        let report = deadlocked.deadlock.expect("just set");
        let snapshot = SweepCheckpoint {
            trace_fingerprint: 0xDEAD_BEEF_CAFE_F00D,
            turns: 42,
            members: vec![
                MemberCheckpoint {
                    config_fingerprint: 1,
                    state: MemberCheckpointState::Done(Box::new(MemberOutcome::Ok(sample_stats(
                        1,
                    )))),
                },
                MemberCheckpoint {
                    config_fingerprint: 2,
                    state: MemberCheckpointState::Done(Box::new(MemberOutcome::Degraded {
                        stats: sample_stats(2),
                        reason: "injected fault: member 1 at record 4096".into(),
                    })),
                },
                MemberCheckpoint {
                    config_fingerprint: 3,
                    state: MemberCheckpointState::Done(Box::new(MemberOutcome::Deadlocked {
                        partial: deadlocked,
                        report,
                    })),
                },
                MemberCheckpoint {
                    config_fingerprint: 4,
                    state: MemberCheckpointState::Done(Box::new(MemberOutcome::Panicked {
                        payload: "worker died".into(),
                    })),
                },
                MemberCheckpoint {
                    config_fingerprint: 5,
                    state: MemberCheckpointState::InFlight { fetched: 131_072 },
                },
            ],
        };
        let bytes = snapshot.to_bytes();
        let back = SweepCheckpoint::from_bytes(&bytes).expect("roundtrip parses");
        assert_eq!(back, snapshot);
    }

    #[test]
    fn corrupted_checkpoint_is_rejected() {
        let snapshot = SweepCheckpoint {
            trace_fingerprint: 1,
            turns: 0,
            members: vec![MemberCheckpoint {
                config_fingerprint: 9,
                state: MemberCheckpointState::InFlight { fetched: 0 },
            }],
        };
        let bytes = snapshot.to_bytes();
        // Truncation anywhere inside the container is detected.
        assert!(matches!(
            SweepCheckpoint::from_bytes(&bytes[..bytes.len() - 1]),
            Err(ArtifactError::TruncatedArtifact { .. })
        ));
        // A flipped payload byte fails its section checksum.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        assert!(matches!(
            SweepCheckpoint::from_bytes(&flipped),
            Err(ArtifactError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn config_fingerprint_tracks_config_changes() {
        let base = SimConfig::micro97();
        assert_eq!(config_fingerprint(&base), config_fingerprint(&SimConfig::micro97()));
        assert_ne!(config_fingerprint(&base), config_fingerprint(&base.clone().with_phys_regs(48)));
    }

    /// The result cache keys memoized statistics by [`config_fingerprint`],
    /// so a configuration field the fingerprint does not cover would let
    /// two *different* machines share one cache entry — silently wrong
    /// statistics. The fingerprint hashes the complete `Debug` rendering,
    /// which covers a field exactly when that rendering names it. This
    /// test pins both halves of that argument:
    ///
    /// * the exhaustive destructure (no `..`) fails to **compile** when a
    ///   field is added to [`SimConfig`], forcing this list — and with it
    ///   the coverage check below — to be extended;
    /// * the rendering check fails when a hand-written `Debug`
    ///   implementation ever replaces the derive and drops a field.
    #[test]
    fn config_fingerprint_covers_every_simconfig_field() {
        let config = SimConfig::micro97();
        let SimConfig {
            fetch_width: _,
            decode_width: _,
            issue_width: _,
            commit_width: _,
            window_size: _,
            fetch_queue: _,
            phys_regs: _,
            int_alu_units: _,
            int_mul_units: _,
            cache_ports: _,
            mispredict_penalty: _,
            icache: _,
            dcache: _,
            dcache_model: _,
            l2: _,
            memory_latency: _,
            predictor: _,
            dvi: _,
            scheduler: _,
        } = config.clone();
        let rendered = format!("{config:?}");
        for field in [
            "fetch_width",
            "decode_width",
            "issue_width",
            "commit_width",
            "window_size",
            "fetch_queue",
            "phys_regs",
            "int_alu_units",
            "int_mul_units",
            "cache_ports",
            "mispredict_penalty",
            "icache",
            "dcache",
            "dcache_model",
            "l2",
            "memory_latency",
            "predictor",
            "dvi",
            "scheduler",
        ] {
            assert!(
                rendered.contains(field),
                "the fingerprint's Debug rendering does not cover `{field}` — \
                 extend the fingerprint before trusting the result cache"
            );
        }
    }

    #[test]
    fn outcome_serialization_is_reusable_outside_checkpoints() {
        // The result cache calls the outcome serializer directly; lock the
        // standalone (non-checkpoint) round trip.
        let outcome = MemberOutcome::Ok(sample_stats(31));
        let mut w = ByteWriter::new();
        write_outcome(&mut w, &outcome);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes, "standalone outcome");
        assert_eq!(read_outcome(&mut r).expect("roundtrips"), outcome);
        r.finish().expect("no trailing bytes");
    }
}
