//! A minimal inline small-vector used on the simulator's hot paths.
//!
//! The instruction window recycles its slots, and each slot carries a
//! short list of physical registers to free at commit
//! ([`crate::window::WindowRing::reclaim`]).
//! With a heap `Vec` every dispatch/commit pair may allocate; with
//! [`SmallVec`] the common case (a handful of registers) lives inline in
//! the entry and the buffer — inline or spilled — is reused when the window
//! slot is recycled, so the steady state performs no allocation at all.

/// A vector of `T` storing up to `N` elements inline, spilling to the heap
/// beyond that. Only the operations the simulator needs are implemented.
#[derive(Debug, Clone)]
pub struct SmallVec<T, const N: usize> {
    inline: [T; N],
    len: usize,
    spill: Vec<T>,
}

impl<T: Copy + Default, const N: usize> SmallVec<T, N> {
    /// Creates an empty vector.
    #[must_use]
    pub fn new() -> Self {
        SmallVec { inline: [T::default(); N], len: 0, spill: Vec::new() }
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends an element.
    pub fn push(&mut self, value: T) {
        if self.len < N {
            self.inline[self.len] = value;
        } else {
            // The spill buffer is retained across `clear`, so a slot that
            // spilled once never allocates again.
            let spill_idx = self.len - N;
            if spill_idx < self.spill.len() {
                self.spill[spill_idx] = value;
            } else {
                self.spill.push(value);
            }
        }
        self.len += 1;
    }

    /// Element at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len`.
    #[must_use]
    pub fn get(&self, idx: usize) -> T {
        assert!(idx < self.len, "index {idx} out of bounds (len {})", self.len);
        if idx < N {
            self.inline[idx]
        } else {
            self.spill[idx - N]
        }
    }

    /// Removes all elements, keeping the spill capacity.
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Appends every element of `other`.
    pub fn extend_from(&mut self, other: &SmallVec<T, N>) {
        for i in 0..other.len() {
            self.push(other.get(i));
        }
    }

    /// Iterates over the elements by value.
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }
}

impl<T: Copy + Default, const N: usize> Default for SmallVec<T, N> {
    fn default() -> Self {
        SmallVec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_inline_up_to_capacity() {
        let mut v: SmallVec<u16, 4> = SmallVec::new();
        for i in 0..4 {
            v.push(i);
        }
        assert_eq!(v.len(), 4);
        assert_eq!(v.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn spills_and_recycles_the_spill_buffer() {
        let mut v: SmallVec<u16, 2> = SmallVec::new();
        for i in 0..10 {
            v.push(i);
        }
        assert_eq!(v.len(), 10);
        assert_eq!(v.get(9), 9);
        v.clear();
        assert!(v.is_empty());
        for i in 0..10 {
            v.push(100 + i);
        }
        assert_eq!(v.get(9), 109);
        assert_eq!(v.iter().sum::<u16>(), (0..10u16).map(|i| 100 + i).sum());
    }

    #[test]
    fn extend_from_copies_everything() {
        let mut a: SmallVec<u16, 2> = SmallVec::new();
        let mut b: SmallVec<u16, 2> = SmallVec::new();
        for i in 0..5 {
            b.push(i);
        }
        a.push(99);
        a.extend_from(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![99, 0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_get_panics() {
        let v: SmallVec<u16, 2> = SmallVec::new();
        let _ = v.get(0);
    }
}
