//! Event-driven scheduling structures for the out-of-order core.
//!
//! The naive way to model writeback, wakeup and select is to rescan the
//! whole instruction window every cycle — O(window) per stage per cycle
//! regardless of how much work actually happens. This module provides the
//! three structures that make those stages proportional to *events*
//! instead:
//!
//! * [`Calendar`] — a bucketed completion calendar ("timing wheel"). When
//!   an instruction issues with latency `L`, its window sequence number is
//!   dropped into the bucket for cycle `now + L`; writeback drains exactly
//!   one bucket per cycle, touching only the instructions that complete
//!   *this* cycle.
//! * [`Waiters`] — per-physical-register waiter lists. A dispatched
//!   instruction whose operand is not ready enqueues itself on the
//!   producer's physical register; when the producer writes back, only the
//!   consumers of that register are reconsidered, decrementing a per-entry
//!   missing-operand count.
//! * [`ReadyRing`] — the select queue: one bit per window slot, indexed by
//!   the entry's ring position so an in-age-order scan is a word-at-a-time
//!   bit scan starting at the window head. Select pops at most
//!   `issue_width` set bits per cycle and leaves structurally-stalled
//!   entries (no free functional unit) set for the next cycle.
//!
//! # Invariants
//!
//! 1. Every `Executing` entry appears in exactly one calendar bucket (or
//!    the overflow list), at its `done_at` cycle. Buckets are drained at
//!    exactly that cycle, so no completion is ever missed or double-seen.
//! 2. A waiter list for physical register `p` is non-empty only while `p`
//!    is not ready. Any transition of `p` to ready drains the whole list.
//!    Entries never wait on a register that is already ready at dispatch.
//! 3. A ready bit is set exactly for entries in state `Waiting` whose
//!    missing-operand count is zero. Bits live only in `[head, tail)` of
//!    the window ring: an entry's bit is cleared when it issues, and an
//!    entry cannot commit while its bit is set (commit requires `Done`).
//! 4. Physical registers are never re-allocated while an in-flight
//!    instruction still references them (releases happen at commit of a
//!    younger instruction, or at drain), so a register's ready bit never
//!    goes ready→not-ready under a waiter.
//!
//! Together with in-order commit these invariants make the event-driven
//! scheduler *cycle-accurate-identical* to the naive full-window scan: the
//! set of issuable entries each cycle is the same, and select considers
//! them in the same (age) order, so every functional-unit, cache-port and
//! cache-state decision is made identically. The golden-stats and property
//! tests in `tests/scheduler_equiv.rs` lock this equivalence down.

use crate::smallvec::SmallVec;

/// A bucketed completion calendar (timing wheel) keyed by absolute cycle.
///
/// The wheel has a power-of-two `horizon`; events further out than the
/// horizon (possible only with extreme configured latencies) go to a small
/// overflow list that is consulted once per drained cycle.
#[derive(Debug)]
pub struct Calendar {
    buckets: Vec<Vec<u64>>,
    mask: u64,
    overflow: Vec<(u64, u64)>,
    /// Number of events currently in the wheel + overflow (lets callers
    /// skip writeback entirely on quiet cycles).
    pending: usize,
}

impl Calendar {
    /// Creates a calendar able to hold events up to `max_latency` cycles in
    /// the future without touching the overflow list.
    #[must_use]
    pub fn new(max_latency: u64) -> Self {
        let horizon = (max_latency + 2).next_power_of_two().max(64);
        Calendar {
            buckets: (0..horizon).map(|_| Vec::new()).collect(),
            mask: horizon - 1,
            overflow: Vec::new(),
            pending: 0,
        }
    }

    /// Number of scheduled, not-yet-drained events.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Schedules `wseq` to complete at absolute cycle `due` (`due` must be
    /// strictly after `now`, which the pipeline guarantees by clamping
    /// latencies to at least one cycle).
    pub fn schedule(&mut self, now: u64, due: u64, wseq: u64) {
        debug_assert!(due > now, "completion must be in the future");
        self.pending += 1;
        if due - now <= self.mask {
            let idx = (due & self.mask) as usize;
            self.buckets[idx].push(wseq);
        } else {
            self.overflow.push((due, wseq));
        }
    }

    /// Moves every event due at exactly `cycle` into `out` (in scheduling
    /// order), clearing them from the calendar.
    pub fn drain_due(&mut self, cycle: u64, out: &mut Vec<u64>) {
        out.clear();
        if self.pending == 0 {
            return;
        }
        let idx = (cycle & self.mask) as usize;
        out.append(&mut self.buckets[idx]);
        if !self.overflow.is_empty() {
            // Rare path: only populated when a configured latency exceeds
            // the wheel horizon.
            let mut i = 0;
            while i < self.overflow.len() {
                if self.overflow[i].0 == cycle {
                    out.push(self.overflow.swap_remove(i).1);
                } else {
                    i += 1;
                }
            }
        }
        self.pending -= out.len();
    }
}

/// Per-producer lists of window entries waiting on a value.
///
/// The key space depends on how the core wires dependences: with
/// alias-table renaming the lists are keyed by **physical register** (one
/// list per physical register, so the structure scales with the register
/// file), while the dependence-graph back end keys them by the producer's
/// **window ring position** — in-flight producers only, so the structure
/// scales with the window and shrinks for large register files. Both
/// keyings deliver the same wakeups in the same registration order.
#[derive(Debug)]
pub struct Waiters {
    lists: Vec<SmallVec<u64, 2>>,
}

impl Waiters {
    /// Creates empty waiter lists over a key space of `keys` producers
    /// (physical registers, or window ring slots).
    #[must_use]
    pub fn new(keys: usize) -> Self {
        Waiters { lists: (0..keys).map(|_| SmallVec::new()).collect() }
    }

    /// Registers `wseq` as waiting on producer key `key`. An entry with
    /// two missing operands on the same producer registers twice.
    pub fn wait(&mut self, key: usize, wseq: u64) {
        self.lists[key].push(wseq);
    }

    /// Drains the waiter list of `key` into `out` (preserving registration
    /// order). Called exactly when the producer's value becomes ready.
    pub fn drain(&mut self, key: usize, out: &mut Vec<u64>) {
        out.clear();
        let list = &mut self.lists[key];
        out.extend(list.iter());
        list.clear();
    }

    /// Whether `key` has any waiters (used by debug assertions).
    #[must_use]
    pub fn has_waiters(&self, key: usize) -> bool {
        !self.lists[key].is_empty()
    }
}

/// The select queue: a circular bitset over window ring positions.
///
/// Bits are indexed by the entry's position in the window ring, so an
/// in-age-order traversal is a wrap-around scan starting at the current
/// window head — `leading word arithmetic + trailing_zeros` per word, not a
/// per-entry loop.
#[derive(Debug)]
pub struct ReadyRing {
    words: Vec<u64>,
    ring_size: u64,
    count: usize,
}

impl ReadyRing {
    /// Creates an empty ready set for a window ring of `ring_size` slots
    /// (`ring_size` must be a power of two).
    #[must_use]
    pub fn new(ring_size: u64) -> Self {
        assert!(ring_size.is_power_of_two(), "ring size must be a power of two");
        let words = ring_size.div_ceil(64).max(1) as usize;
        ReadyRing { words: vec![0; words], ring_size, count: 0 }
    }

    /// Number of ready entries.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    fn pos(&self, wseq: u64) -> (usize, u64) {
        let pos = wseq & (self.ring_size - 1);
        ((pos / 64) as usize, 1u64 << (pos % 64))
    }

    /// Marks the entry with window sequence `wseq` ready.
    pub fn set(&mut self, wseq: u64) {
        let (w, bit) = self.pos(wseq);
        debug_assert!(self.words[w] & bit == 0, "entry marked ready twice");
        self.words[w] |= bit;
        self.count += 1;
    }

    /// Clears the entry's ready bit (at issue).
    pub fn clear(&mut self, wseq: u64) {
        let (w, bit) = self.pos(wseq);
        debug_assert!(self.words[w] & bit != 0, "clearing a bit that is not set");
        self.words[w] &= !bit;
        self.count -= 1;
    }

    /// Copies the raw bit words into `out` (a reusable scratch buffer), so
    /// select can walk a stable snapshot while clearing bits of issued
    /// entries. See [`ReadySnapshotIter`].
    pub fn snapshot_words(&self, out: &mut Vec<u64>) {
        out.clear();
        out.extend_from_slice(&self.words);
    }

    /// Iterates a snapshot's set positions in age order from `head`,
    /// yielding window sequence numbers. Lazy: select stops pulling as soon
    /// as it has issued `issue_width` instructions, so a long ready list
    /// (e.g. many loads queued on two cache ports) is not walked to the
    /// end every cycle.
    pub fn iter_snapshot<'a>(&self, snapshot: &'a [u64], head: u64) -> ReadySnapshotIter<'a> {
        let mask = self.ring_size - 1;
        let head_pos = head & mask;
        ReadySnapshotIter {
            words: snapshot,
            mask,
            head,
            head_pos,
            k: 0,
            bits: 0,
            current_word: 0,
            remaining: self.count,
        }
    }

    /// Collects every ready entry into `out` in age order, given the
    /// current window head sequence number. (The caller re-checks state and
    /// applies the issue-width cut-off; entries it cannot issue stay set.)
    pub fn collect_in_age_order(&self, head: u64, out: &mut Vec<u64>) {
        out.clear();
        if self.count == 0 {
            return;
        }
        let mask = self.ring_size - 1;
        let head_pos = head & mask;
        let nwords = self.words.len() as u64;
        let first_word = head_pos / 64;
        let first_bit = head_pos % 64;
        for k in 0..=nwords {
            let w = ((first_word + k) % nwords) as usize;
            let mut bits = self.words[w];
            if k == 0 {
                bits &= !0u64 << first_bit;
            } else if k == nwords {
                // Second visit of the first word: only the bits *before*
                // the head position (they wrapped around and are youngest).
                bits &= !(!0u64 << first_bit);
            }
            while bits != 0 {
                let b = bits.trailing_zeros() as u64;
                bits &= bits - 1;
                let pos = (w as u64) * 64 + b;
                // Map the ring position back to a window sequence number.
                let delta = (pos.wrapping_sub(head_pos)) & mask;
                out.push(head + delta);
                if out.len() == self.count {
                    return;
                }
            }
        }
    }
}

/// Lazy age-ordered iterator over a [`ReadyRing`] word snapshot.
#[derive(Debug)]
pub struct ReadySnapshotIter<'a> {
    words: &'a [u64],
    mask: u64,
    head: u64,
    head_pos: u64,
    /// Word visit index: `0..=words.len()` (the head word is visited twice,
    /// high bits first, wrapped low bits last).
    k: usize,
    bits: u64,
    current_word: usize,
    remaining: usize,
}

impl Iterator for ReadySnapshotIter<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.remaining == 0 {
            return None;
        }
        let nwords = self.words.len();
        let first_word = (self.head_pos / 64) as usize;
        let first_bit = self.head_pos % 64;
        loop {
            if self.bits == 0 {
                if self.k > nwords {
                    return None;
                }
                let w = (first_word + self.k) % nwords;
                let mut bits = self.words[w];
                if self.k == 0 {
                    bits &= !0u64 << first_bit;
                } else if self.k == nwords {
                    bits &= !(!0u64 << first_bit);
                }
                self.current_word = w;
                self.bits = bits;
                self.k += 1;
                continue;
            }
            let b = u64::from(self.bits.trailing_zeros());
            self.bits &= self.bits - 1;
            let pos = (self.current_word as u64) * 64 + b;
            let delta = pos.wrapping_sub(self.head_pos) & self.mask;
            self.remaining -= 1;
            return Some(self.head + delta);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_iter_matches_collect() {
        let mut r = ReadyRing::new(128);
        let head = 1000u64;
        for d in [0u64, 3, 17, 64, 90, 113] {
            r.set(head + d);
        }
        let mut collected = Vec::new();
        r.collect_in_age_order(head, &mut collected);
        let mut snap = Vec::new();
        r.snapshot_words(&mut snap);
        let lazy: Vec<u64> = r.iter_snapshot(&snap, head).collect();
        assert_eq!(lazy, collected);
        // Lazy early-exit yields the oldest entries first.
        let first_two: Vec<u64> = r.iter_snapshot(&snap, head).take(2).collect();
        assert_eq!(first_two, vec![head, head + 3]);
    }

    #[test]
    fn calendar_drains_exactly_the_due_cycle() {
        let mut c = Calendar::new(59);
        let mut out = Vec::new();
        c.schedule(10, 12, 100);
        c.schedule(10, 11, 101);
        c.schedule(10, 12, 102);
        assert_eq!(c.pending(), 3);
        c.drain_due(11, &mut out);
        assert_eq!(out, vec![101]);
        c.drain_due(12, &mut out);
        assert_eq!(out, vec![100, 102]);
        assert_eq!(c.pending(), 0);
        c.drain_due(13, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn calendar_overflow_events_still_fire() {
        let mut c = Calendar::new(10); // horizon 64
        let mut out = Vec::new();
        c.schedule(0, 1000, 7);
        for cycle in 1..1000 {
            c.drain_due(cycle, &mut out);
            assert!(out.is_empty(), "nothing due at {cycle}");
        }
        c.drain_due(1000, &mut out);
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn waiters_drain_in_registration_order() {
        let mut w = Waiters::new(8);
        let mut out = Vec::new();
        w.wait(3, 10);
        w.wait(3, 11);
        w.wait(3, 10); // same entry, second operand on the same register
        assert!(w.has_waiters(3));
        w.drain(3, &mut out);
        assert_eq!(out, vec![10, 11, 10]);
        assert!(!w.has_waiters(3));
        w.drain(3, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn ready_ring_iterates_in_age_order_across_wrap() {
        let mut r = ReadyRing::new(8);
        // Window spans sequences 6..11 → ring positions 6,7,0,1,2.
        for wseq in [6u64, 8, 10] {
            r.set(wseq);
        }
        let mut out = Vec::new();
        r.collect_in_age_order(6, &mut out);
        assert_eq!(out, vec![6, 8, 10]);
        r.clear(8);
        r.collect_in_age_order(6, &mut out);
        assert_eq!(out, vec![6, 10]);
        assert_eq!(r.count(), 2);
    }

    #[test]
    fn ready_ring_large_window_age_order() {
        let mut r = ReadyRing::new(128);
        let head = 1000u64; // position 1000 % 128 = 104: head mid-word, wraps
        let seqs: Vec<u64> = (0..100).step_by(7).map(|d| head + d).collect();
        for &s in &seqs {
            r.set(s);
        }
        let mut out = Vec::new();
        r.collect_in_age_order(head, &mut out);
        assert_eq!(out, seqs);
    }
}
