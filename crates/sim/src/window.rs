//! The instruction window as packed structure-of-arrays state.
//!
//! The window used to be a ring of `InFlight` structs — one ~80-byte
//! record per entry with an `enum` state machine inside — and every
//! back-end stage loaded whole entries to read one or two fields. This
//! module stores the same information as parallel arrays over ring slots
//! (*structure of arrays*), so each per-cycle loop touches exactly the
//! array it needs:
//!
//! * **commit** reads one byte of the `done` flag array per retiring entry
//!   (plus `old_dst`/`reclaim` only when it actually retires);
//! * **writeback** flips `done` flags and reads `dst`/`resolves`;
//! * **issue** reads `class` (and `mem_addr` for memory operations);
//! * **dispatch** writes each array at most once — and entries that carry
//!   no value (no destination, no memory address) never touch those
//!   arrays at all.
//!
//! The execution state machine (`Waiting → Executing → Done`) is encoded
//! as two flag arrays (`issued`, `done`) plus a `done_at` cycle array
//! instead of a per-entry enum; [`WindowRing::state`] reconstructs the
//! [`EntryState`] view for the reference naive-scan scheduler and for
//! assertions. The `done` flags double as the completion set the
//! dependence-graph back end probes when resolving producer links (it
//! used to mirror them in a private bitset).
//!
//! Entries are identified by their *window sequence number* (`wseq`), a
//! monotonically increasing dispatch counter; the slot of entry `wseq` is
//! `wseq & mask`, so slot storage — including each slot's inline reclaim
//! buffer — is reused as the window advances, and a sequence number dates
//! an entry unambiguously for the scheduler's calendar and waiter lists.
//!
//! # Memory operations carry their address — enforced at push
//!
//! [`WindowRing::push`] *requires* an effective address for every entry of
//! a memory class and refuses to store one for anything else. The old
//! per-entry `Option<u64>` silently defaulted to address 0 deep in the
//! issue stage (`unwrap_or(0)`), so a front-end decode bug could quietly
//! alias every load onto cache line 0 and skew miss rates; now the
//! malformed entry is unrepresentable and the bug panics at dispatch,
//! where the offending record is still identifiable.

use crate::rename::PhysReg;
use crate::smallvec::SmallVec;
use dvi_isa::InstrClass;

/// Execution state of an in-flight instruction (the derived view over the
/// packed `issued`/`done`/`done_at` arrays — see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryState {
    /// Waiting for source operands or a functional unit.
    Waiting,
    /// Executing; the result is available at the given cycle.
    Executing {
        /// Cycle at which execution finishes.
        done_at: u64,
    },
    /// Finished; eligible for in-order commit.
    Done,
}

/// Packed encoding of `Option<PhysReg>`: `NO_REG` is `None`.
const NO_REG: u16 = u16::MAX;

#[inline]
fn pack(p: Option<PhysReg>) -> u16 {
    p.map_or(NO_REG, |p| p.0)
}

#[inline]
fn unpack(raw: u16) -> Option<PhysReg> {
    (raw != NO_REG).then_some(PhysReg(raw))
}

/// The instruction window as parallel arrays over a fixed ring of recycled
/// slots. See the module documentation for the layout rationale.
#[derive(Debug)]
pub struct WindowRing {
    // --- per-slot parallel arrays (indexed by `wseq & mask`) ---
    /// Resource-model class.
    class: Vec<InstrClass>,
    /// Whether the entry issued to a functional unit (`Executing` or, once
    /// `done` is also set, finished after executing).
    issued: Vec<bool>,
    /// Whether the entry finished (eligible for commit). This is the
    /// completion set the dependence-graph back end probes directly.
    done: Vec<bool>,
    /// Whether this is the mispredicted branch/return fetch stalls on.
    resolves: Vec<bool>,
    /// Source operands not yet produced (event-driven scheduler only).
    missing: Vec<u8>,
    /// Destination physical register ([`NO_REG`] = none).
    dst: Vec<u16>,
    /// Previous mapping of the destination architectural register, freed
    /// at commit ([`NO_REG`] = none).
    old_dst: Vec<u16>,
    /// Renamed source operands ([`NO_REG`] = always ready). Left unset
    /// under dependence-graph wiring (producer links carry the
    /// information).
    srcs: Vec<[u16; 2]>,
    /// Effective address — written and read only for memory classes.
    mem_addr: Vec<u64>,
    /// Cycle at which execution finishes (valid while `issued`).
    done_at: Vec<u64>,
    /// Trace sequence number of the dispatched record (dependence-graph
    /// back end; zero when unused).
    dseq: Vec<u64>,
    /// Physical registers reclaimed by DVI that become free when this
    /// entry commits. The paper frees dead physical registers only when
    /// the DVI-providing instruction is non-speculative; deferring the
    /// release to commit additionally guarantees no older in-flight
    /// instruction still references them. Stored inline ([`SmallVec`])
    /// and recycled with the slot, so dispatch/commit never allocate.
    reclaim: Vec<SmallVec<PhysReg, 8>>,
    // --- ring bookkeeping ---
    mask: u64,
    capacity: usize,
    head: u64,
    tail: u64,
}

impl WindowRing {
    /// Creates an empty window of `capacity` entries.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let ring = capacity.max(1).next_power_of_two();
        WindowRing {
            class: vec![InstrClass::Nop; ring],
            issued: vec![false; ring],
            done: vec![false; ring],
            resolves: vec![false; ring],
            missing: vec![0; ring],
            dst: vec![NO_REG; ring],
            old_dst: vec![NO_REG; ring],
            srcs: vec![[NO_REG; 2]; ring],
            mem_addr: vec![0; ring],
            done_at: vec![0; ring],
            dseq: vec![0; ring],
            reclaim: (0..ring).map(|_| SmallVec::new()).collect(),
            mask: ring as u64 - 1,
            capacity,
            head: 0,
            tail: 0,
        }
    }

    /// Ring size (power of two ≥ capacity), for sizing the ready bitset
    /// and the waiter-list key space.
    #[must_use]
    pub fn ring_size(&self) -> u64 {
        self.mask + 1
    }

    /// Occupied entries.
    #[must_use]
    #[allow(clippy::cast_possible_truncation)]
    pub fn len(&self) -> usize {
        (self.tail - self.head) as usize
    }

    /// Whether the window is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.head == self.tail
    }

    /// Whether the window has no free slot.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.len() >= self.capacity
    }

    /// Free entry slots remaining — the fused dispatch path's one-compare
    /// structural-hazard check for a whole fetch group.
    #[must_use]
    pub fn free_slots(&self) -> usize {
        self.capacity - self.len()
    }

    /// Sequence number of the oldest entry (the next to commit), if any.
    #[must_use]
    pub fn head_seq(&self) -> u64 {
        self.head
    }

    /// Whether `wseq` is currently in the window.
    #[must_use]
    pub fn contains(&self, wseq: u64) -> bool {
        (self.head..self.tail).contains(&wseq)
    }

    /// Iterates over the occupied sequence numbers in age order.
    pub fn seqs(&self) -> impl Iterator<Item = u64> {
        self.head..self.tail
    }

    #[inline]
    fn slot(&self, wseq: u64) -> usize {
        debug_assert!(self.contains(wseq), "stale window sequence {wseq}");
        (wseq & self.mask) as usize
    }

    /// Claims the next slot, re-initializing its arrays in place, and
    /// returns its sequence number. The trace record sequence number and
    /// the fetch-stall marker are part of the claim so the whole dispatch
    /// write happens in one pass over the slot.
    ///
    /// # Panics
    ///
    /// Panics if the window is full (the caller checks
    /// [`WindowRing::is_full`]), or if a memory-class entry arrives
    /// without an effective address / a non-memory entry arrives with one
    /// (see the module docs — the malformed entry used to alias to cache
    /// line 0 silently).
    #[allow(clippy::too_many_arguments)]
    pub fn push(
        &mut self,
        mem_addr: Option<u64>,
        dst: Option<PhysReg>,
        old_dst: Option<PhysReg>,
        srcs: [Option<PhysReg>; 2],
        class: InstrClass,
        dseq: u64,
        resolves_fetch_stall: bool,
    ) -> u64 {
        assert!(!self.is_full(), "window overflow");
        assert_eq!(
            class.uses_cache_port(),
            mem_addr.is_some(),
            "effective address and memory class must agree at dispatch ({class}): \
             a memory operation without an address would silently alias to line 0"
        );
        let wseq = self.tail;
        let s = (wseq & self.mask) as usize;
        self.class[s] = class;
        self.issued[s] = false;
        self.done[s] = false;
        self.resolves[s] = resolves_fetch_stall;
        self.missing[s] = 0;
        self.dst[s] = pack(dst);
        self.old_dst[s] = pack(old_dst);
        self.srcs[s] = [pack(srcs[0]), pack(srcs[1])];
        if let Some(addr) = mem_addr {
            self.mem_addr[s] = addr;
        }
        self.dseq[s] = dseq;
        self.reclaim[s].clear();
        self.tail += 1;
        wseq
    }

    /// Retires the oldest entry (its slot is recycled by a later push).
    ///
    /// # Panics
    ///
    /// Panics if the window is empty.
    pub fn pop_front(&mut self) {
        assert!(!self.is_empty(), "pop from empty window");
        self.head += 1;
    }

    // ------------------------------------------------------ field access --

    /// Resource-model class of the entry.
    #[inline]
    #[must_use]
    pub fn class(&self, wseq: u64) -> InstrClass {
        self.class[self.slot(wseq)]
    }

    /// Destination physical register, if any.
    #[inline]
    #[must_use]
    pub fn dst(&self, wseq: u64) -> Option<PhysReg> {
        unpack(self.dst[self.slot(wseq)])
    }

    /// Previous mapping of the destination register, freed at commit.
    #[inline]
    #[must_use]
    pub fn old_dst(&self, wseq: u64) -> Option<PhysReg> {
        unpack(self.old_dst[self.slot(wseq)])
    }

    /// Renamed source operands (`None` = always ready).
    #[inline]
    #[must_use]
    pub fn srcs(&self, wseq: u64) -> [Option<PhysReg>; 2] {
        let [a, b] = self.srcs[self.slot(wseq)];
        [unpack(a), unpack(b)]
    }

    /// Effective address of a memory-class entry (guaranteed present by
    /// [`WindowRing::push`]).
    #[inline]
    #[must_use]
    pub fn mem_addr(&self, wseq: u64) -> u64 {
        let s = self.slot(wseq);
        debug_assert!(self.class[s].uses_cache_port(), "address read on a non-memory entry");
        self.mem_addr[s]
    }

    /// Trace sequence number of the dispatched record.
    #[inline]
    #[must_use]
    pub fn dseq(&self, wseq: u64) -> u64 {
        self.dseq[self.slot(wseq)]
    }

    /// Whether fetch resumes when this entry completes.
    #[inline]
    #[must_use]
    pub fn resolves_fetch_stall(&self, wseq: u64) -> bool {
        self.resolves[self.slot(wseq)]
    }

    /// Sets the missing-operand count at dispatch.
    #[inline]
    pub fn set_missing(&mut self, wseq: u64, missing: u8) {
        let s = self.slot(wseq);
        self.missing[s] = missing;
    }

    /// Decrements the missing-operand count at wakeup; returns the
    /// remaining count.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the count is already zero.
    #[inline]
    pub fn dec_missing(&mut self, wseq: u64) -> u8 {
        let s = self.slot(wseq);
        debug_assert!(self.missing[s] > 0, "waiter had no missing operands");
        self.missing[s] -= 1;
        self.missing[s]
    }

    /// The DVI reclaim list riding this entry to commit.
    #[inline]
    pub fn reclaim_mut(&mut self, wseq: u64) -> &mut SmallVec<PhysReg, 8> {
        let s = self.slot(wseq);
        &mut self.reclaim[s]
    }

    /// Read access to the entry's DVI reclaim list (commit releases it).
    #[inline]
    #[must_use]
    pub fn reclaim(&self, wseq: u64) -> &SmallVec<PhysReg, 8> {
        &self.reclaim[self.slot(wseq)]
    }

    // -------------------------------------------------- execution state --

    /// Whether the entry has finished executing (this flag array is what
    /// the dependence-graph back end probes when resolving producer
    /// links).
    #[inline]
    #[must_use]
    pub fn is_done(&self, wseq: u64) -> bool {
        self.done[self.slot(wseq)]
    }

    /// Whether the entry is waiting (not issued, not finished).
    #[inline]
    #[must_use]
    pub fn is_waiting(&self, wseq: u64) -> bool {
        let s = self.slot(wseq);
        !self.issued[s] && !self.done[s]
    }

    /// Marks the entry finished (at writeback — or directly at dispatch
    /// for entries that occupy no functional unit).
    #[inline]
    pub fn set_done(&mut self, wseq: u64) {
        let s = self.slot(wseq);
        self.done[s] = true;
    }

    /// Fused writeback step: marks the entry finished and returns the
    /// fields wakeup consumes — the destination register and the
    /// fetch-stall marker — in one pass over the slot.
    #[inline]
    pub fn complete(&mut self, wseq: u64) -> (Option<PhysReg>, bool) {
        let s = self.slot(wseq);
        debug_assert!(self.issued[s] && !self.done[s], "completing an entry not executing");
        self.done[s] = true;
        (unpack(self.dst[s]), self.resolves[s])
    }

    /// Marks the entry issued, finishing execution at `done_at`.
    #[inline]
    pub fn mark_executing(&mut self, wseq: u64, done_at: u64) {
        let s = self.slot(wseq);
        debug_assert!(!self.issued[s] && !self.done[s], "entry issued twice");
        self.issued[s] = true;
        self.done_at[s] = done_at;
    }

    /// Cycle at which an issued entry finishes execution.
    #[inline]
    #[must_use]
    pub fn done_at(&self, wseq: u64) -> u64 {
        let s = self.slot(wseq);
        debug_assert!(self.issued[s], "done_at read on an un-issued entry");
        self.done_at[s]
    }

    /// The derived [`EntryState`] view (reference scheduler, assertions).
    #[inline]
    #[must_use]
    pub fn state(&self, wseq: u64) -> EntryState {
        let s = self.slot(wseq);
        if self.done[s] {
            EntryState::Done
        } else if self.issued[s] {
            EntryState::Executing { done_at: self.done_at[s] }
        } else {
            EntryState::Waiting
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_entries_start_waiting() {
        let mut w = WindowRing::new(4);
        let e = w.push(None, None, None, [None, None], InstrClass::Nop, 0, false);
        assert_eq!(w.state(e), EntryState::Waiting);
        assert!(w.is_waiting(e));
        assert!(!w.is_done(e));
    }

    #[test]
    fn state_transitions_are_derived_from_the_flag_arrays() {
        let mut w = WindowRing::new(4);
        let e = w.push(None, Some(PhysReg(3)), None, [None, None], InstrClass::IntAlu, 0, false);
        w.mark_executing(e, 5);
        assert_eq!(w.state(e), EntryState::Executing { done_at: 5 });
        assert_eq!(w.done_at(e), 5);
        assert!(!w.is_done(e) && !w.is_waiting(e));
        w.set_done(e);
        assert_eq!(w.state(e), EntryState::Done);
        assert!(w.is_done(e));
    }

    #[test]
    fn ring_recycles_slots_in_fifo_order() {
        let mut w = WindowRing::new(3); // ring size 4
        assert_eq!(w.ring_size(), 4);
        let a = w.push(None, None, None, [None, None], InstrClass::Nop, 0, false);
        let b = w.push(None, None, None, [None, None], InstrClass::Nop, 0, false);
        let c = w.push(None, None, None, [None, None], InstrClass::Nop, 0, false);
        assert!(w.is_full());
        assert_eq!((a, b, c), (0, 1, 2));
        assert_eq!(w.head_seq(), 0);
        w.pop_front();
        assert!(!w.is_full());
        let d = w.push(Some(64), None, None, [None, None], InstrClass::Load, 0, false);
        assert_eq!(d, 3);
        assert!(w.contains(b) && w.contains(d) && !w.contains(a));
        assert_eq!(w.seqs().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(w.len(), 3);
        assert_eq!(w.mem_addr(d), 64);
    }

    #[test]
    fn push_resets_the_recycled_slot() {
        let mut w = WindowRing::new(1); // ring size 1: every push recycles slot 0
        let a = w.push(
            None,
            Some(PhysReg(7)),
            Some(PhysReg(8)),
            [Some(PhysReg(1)), None],
            InstrClass::IntAlu,
            99,
            true,
        );
        w.reclaim_mut(a).push(PhysReg(4));
        w.set_missing(a, 2);
        assert!(w.resolves_fetch_stall(a));
        assert_eq!(w.dseq(a), 99);
        w.mark_executing(a, 9);
        w.set_done(a);
        w.pop_front();
        let b = w.push(None, None, None, [None, None], InstrClass::Nop, 0, false);
        assert!(w.reclaim(b).is_empty());
        assert_eq!(w.state(b), EntryState::Waiting);
        assert!(!w.resolves_fetch_stall(b));
        assert_eq!(w.dseq(b), 0);
        assert_eq!(w.dst(b), None);
        assert_eq!(w.old_dst(b), None);
        assert_eq!(w.srcs(b), [None, None]);
        assert_eq!(w.missing[(b & w.mask) as usize], 0, "missing count restarts at zero");
    }

    #[test]
    fn wakeup_decrements_missing_operands() {
        let mut w = WindowRing::new(4);
        let e = w.push(
            None,
            None,
            None,
            [Some(PhysReg(1)), Some(PhysReg(2))],
            InstrClass::IntAlu,
            0,
            false,
        );
        w.set_missing(e, 2);
        assert_eq!(w.dec_missing(e), 1);
        assert_eq!(w.dec_missing(e), 0);
    }

    #[test]
    #[should_panic(expected = "memory class must agree")]
    fn memory_op_without_an_address_is_unrepresentable() {
        let mut w = WindowRing::new(4);
        // The old encoding stored `None` and the issue stage silently read
        // address 0; the SoA window refuses the push outright.
        let _ = w.push(None, Some(PhysReg(3)), None, [None, None], InstrClass::Load, 0, false);
    }

    #[test]
    #[should_panic(expected = "memory class must agree")]
    fn address_on_a_non_memory_op_is_rejected() {
        let mut w = WindowRing::new(4);
        let _ =
            w.push(Some(0x40), Some(PhysReg(3)), None, [None, None], InstrClass::IntAlu, 0, false);
    }

    #[test]
    fn stores_carry_their_address() {
        let mut w = WindowRing::new(4);
        let e =
            w.push(Some(0xbeef), None, None, [Some(PhysReg(5)), None], InstrClass::Store, 0, false);
        assert_eq!(w.mem_addr(e), 0xbeef);
        assert_eq!(w.srcs(e), [Some(PhysReg(5)), None]);
    }
}
