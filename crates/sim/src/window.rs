//! Instruction-window (reorder buffer) entries.

use crate::rename::PhysReg;
use dvi_program::DynInst;

/// Execution state of an in-flight instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryState {
    /// Waiting for source operands or a functional unit.
    Waiting,
    /// Executing; the result is available at the given cycle.
    Executing {
        /// Cycle at which execution finishes.
        done_at: u64,
    },
    /// Finished; eligible for in-order commit.
    Done,
}

/// An instruction occupying an instruction-window / reorder-buffer slot.
#[derive(Debug, Clone)]
pub struct InFlight {
    /// The dynamic instruction.
    pub dyn_inst: DynInst,
    /// Physical register allocated for the destination, if any.
    pub dst: Option<PhysReg>,
    /// Previous mapping of the destination architectural register, returned
    /// to the free list when this instruction commits.
    pub old_dst: Option<PhysReg>,
    /// Renamed source operands (`None` means always ready: the zero
    /// register, an immediate, or a register whose mapping DVI removed).
    pub srcs: [Option<PhysReg>; 2],
    /// Physical registers reclaimed by DVI that become free when this entry
    /// commits. The paper frees dead physical registers only when the
    /// DVI-providing instruction is non-speculative; deferring the release
    /// to commit additionally guarantees no older in-flight instruction
    /// still references them.
    pub reclaim: Vec<PhysReg>,
    /// Current state.
    pub state: EntryState,
    /// Whether this is the conditional branch or return the front end
    /// mispredicted (fetch resumes when it completes).
    pub resolves_fetch_stall: bool,
}

impl InFlight {
    /// Creates a freshly dispatched entry.
    #[must_use]
    pub fn new(dyn_inst: DynInst, dst: Option<PhysReg>, old_dst: Option<PhysReg>, srcs: [Option<PhysReg>; 2]) -> Self {
        InFlight {
            dyn_inst,
            dst,
            old_dst,
            srcs,
            reclaim: Vec::new(),
            state: EntryState::Waiting,
            resolves_fetch_stall: false,
        }
    }

    /// Whether the entry has finished executing.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.state == EntryState::Done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvi_isa::Instr;
    use dvi_program::ProcId;

    fn dummy_dyn(instr: Instr) -> DynInst {
        DynInst { seq: 0, pc: 0, instr, proc: ProcId(0), mem_addr: None, taken: None, next_pc: 1 }
    }

    #[test]
    fn new_entries_start_waiting() {
        let e = InFlight::new(dummy_dyn(Instr::Nop), None, None, [None, None]);
        assert_eq!(e.state, EntryState::Waiting);
        assert!(!e.is_done());
    }

    #[test]
    fn done_state_is_reported() {
        let mut e = InFlight::new(dummy_dyn(Instr::Nop), None, None, [None, None]);
        e.state = EntryState::Executing { done_at: 5 };
        assert!(!e.is_done());
        e.state = EntryState::Done;
        assert!(e.is_done());
    }
}
