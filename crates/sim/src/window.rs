//! Instruction-window (reorder buffer) entries and the recycled entry ring.

use crate::rename::PhysReg;
use crate::smallvec::SmallVec;
use dvi_isa::InstrClass;

/// Execution state of an in-flight instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryState {
    /// Waiting for source operands or a functional unit.
    Waiting,
    /// Executing; the result is available at the given cycle.
    Executing {
        /// Cycle at which execution finishes.
        done_at: u64,
    },
    /// Finished; eligible for in-order commit.
    Done,
}

/// An instruction occupying an instruction-window / reorder-buffer slot.
///
/// Only the fields the back end actually consumes are stored: the decode
/// products (class, renamed operands) come memoized from the front end and
/// the sole dynamic field execution needs is the effective address —
/// keeping the entry small makes the recycled ring cache-dense and the
/// dispatch path copy-light.
#[derive(Debug, Clone)]
pub struct InFlight {
    /// Effective address for memory instructions.
    pub mem_addr: Option<u64>,
    /// Physical register allocated for the destination, if any.
    pub dst: Option<PhysReg>,
    /// Previous mapping of the destination architectural register, returned
    /// to the free list when this instruction commits.
    pub old_dst: Option<PhysReg>,
    /// Renamed source operands (`None` means always ready: the zero
    /// register, an immediate, or a register whose mapping DVI removed).
    pub srcs: [Option<PhysReg>; 2],
    /// Resource-model class, memoized at dispatch by the front end's
    /// per-PC decode table so issue never re-derives it from the
    /// instruction.
    pub class: InstrClass,
    /// Physical registers reclaimed by DVI that become free when this entry
    /// commits. The paper frees dead physical registers only when the
    /// DVI-providing instruction is non-speculative; deferring the release
    /// to commit additionally guarantees no older in-flight instruction
    /// still references them. Stored inline ([`SmallVec`]) and recycled
    /// with the window slot, so dispatch/commit never allocate.
    pub reclaim: SmallVec<PhysReg, 8>,
    /// Current state.
    pub state: EntryState,
    /// Whether this is the conditional branch or return the front end
    /// mispredicted (fetch resumes when it completes).
    pub resolves_fetch_stall: bool,
    /// Trace sequence number of the dispatched record (maintained by the
    /// dependence-graph back end to map producer records to window
    /// entries; zero when unused).
    pub seq: u64,
    /// Source operands not yet produced (maintained by the event-driven
    /// scheduler; the naive scan ignores it).
    pub missing: u8,
}

impl InFlight {
    /// Creates a freshly dispatched entry.
    #[must_use]
    pub fn new(
        mem_addr: Option<u64>,
        dst: Option<PhysReg>,
        old_dst: Option<PhysReg>,
        srcs: [Option<PhysReg>; 2],
        class: InstrClass,
    ) -> Self {
        InFlight {
            mem_addr,
            dst,
            old_dst,
            srcs,
            class,
            reclaim: SmallVec::new(),
            state: EntryState::Waiting,
            resolves_fetch_stall: false,
            seq: 0,
            missing: 0,
        }
    }

    /// A placeholder entry used to pre-fill recycled window slots.
    #[must_use]
    pub fn placeholder() -> Self {
        InFlight::new(None, None, None, [None, None], InstrClass::Nop)
    }

    /// Re-initializes a recycled slot in place, keeping the `reclaim`
    /// buffer's capacity.
    pub fn reset(
        &mut self,
        mem_addr: Option<u64>,
        dst: Option<PhysReg>,
        old_dst: Option<PhysReg>,
        srcs: [Option<PhysReg>; 2],
        class: InstrClass,
    ) {
        self.mem_addr = mem_addr;
        self.dst = dst;
        self.old_dst = old_dst;
        self.srcs = srcs;
        self.class = class;
        self.reclaim.clear();
        self.state = EntryState::Waiting;
        self.resolves_fetch_stall = false;
        self.seq = 0;
        self.missing = 0;
    }

    /// Whether the entry has finished executing.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.state == EntryState::Done
    }
}

/// The instruction window as a fixed ring of recycled [`InFlight`] slots.
///
/// Entries are identified by their *window sequence number* (`wseq`), a
/// monotonically increasing dispatch counter. The slot of entry `wseq` is
/// `wseq & mask`, so slot storage — including each entry's inline reclaim
/// buffer — is reused as the window advances, and a sequence number dates
/// an entry unambiguously for the scheduler's calendar and waiter lists.
#[derive(Debug)]
pub struct WindowRing {
    slots: Vec<InFlight>,
    mask: u64,
    capacity: usize,
    head: u64,
    tail: u64,
}

impl WindowRing {
    /// Creates an empty window of `capacity` entries.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let ring = (capacity.max(1)).next_power_of_two() as u64;
        WindowRing {
            slots: (0..ring).map(|_| InFlight::placeholder()).collect(),
            mask: ring - 1,
            capacity,
            head: 0,
            tail: 0,
        }
    }

    /// Ring size (power of two ≥ capacity), for sizing the ready bitset.
    #[must_use]
    pub fn ring_size(&self) -> u64 {
        self.mask + 1
    }

    /// Occupied entries.
    #[must_use]
    #[allow(clippy::cast_possible_truncation)]
    pub fn len(&self) -> usize {
        (self.tail - self.head) as usize
    }

    /// Whether the window is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.head == self.tail
    }

    /// Whether the window has no free slot.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.len() >= self.capacity
    }

    /// Sequence number of the oldest entry (the next to commit), if any.
    #[must_use]
    pub fn head_seq(&self) -> u64 {
        self.head
    }

    /// Claims the next slot, re-initializing it in place, and returns its
    /// sequence number.
    ///
    /// # Panics
    ///
    /// Panics if the window is full (the caller checks [`WindowRing::is_full`]).
    pub fn push(
        &mut self,
        mem_addr: Option<u64>,
        dst: Option<PhysReg>,
        old_dst: Option<PhysReg>,
        srcs: [Option<PhysReg>; 2],
        class: InstrClass,
    ) -> u64 {
        assert!(!self.is_full(), "window overflow");
        let wseq = self.tail;
        self.slots[(wseq & self.mask) as usize].reset(mem_addr, dst, old_dst, srcs, class);
        self.tail += 1;
        wseq
    }

    /// The oldest entry, if any.
    #[must_use]
    pub fn front(&self) -> Option<&InFlight> {
        if self.is_empty() {
            None
        } else {
            Some(&self.slots[(self.head & self.mask) as usize])
        }
    }

    /// Mutable access to the oldest entry, if any.
    pub fn front_mut(&mut self) -> Option<&mut InFlight> {
        if self.is_empty() {
            None
        } else {
            Some(&mut self.slots[(self.head & self.mask) as usize])
        }
    }

    /// Retires the oldest entry (its slot is recycled by a later push).
    ///
    /// # Panics
    ///
    /// Panics if the window is empty.
    pub fn pop_front(&mut self) {
        assert!(!self.is_empty(), "pop from empty window");
        self.head += 1;
    }

    /// The entry with sequence number `wseq`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `wseq` is not currently in the window.
    #[must_use]
    pub fn get(&self, wseq: u64) -> &InFlight {
        debug_assert!(self.contains(wseq), "stale window sequence {wseq}");
        &self.slots[(wseq & self.mask) as usize]
    }

    /// Mutable access to the entry with sequence number `wseq`.
    pub fn get_mut(&mut self, wseq: u64) -> &mut InFlight {
        debug_assert!(self.contains(wseq), "stale window sequence {wseq}");
        &mut self.slots[(wseq & self.mask) as usize]
    }

    /// Whether `wseq` is currently in the window.
    #[must_use]
    pub fn contains(&self, wseq: u64) -> bool {
        (self.head..self.tail).contains(&wseq)
    }

    /// Iterates over the occupied sequence numbers in age order.
    pub fn seqs(&self) -> impl Iterator<Item = u64> {
        self.head..self.tail
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_entries_start_waiting() {
        let e = InFlight::new(None, None, None, [None, None], InstrClass::Nop);
        assert_eq!(e.state, EntryState::Waiting);
        assert!(!e.is_done());
    }

    #[test]
    fn done_state_is_reported() {
        let mut e = InFlight::new(None, None, None, [None, None], InstrClass::Nop);
        e.state = EntryState::Executing { done_at: 5 };
        assert!(!e.is_done());
        e.state = EntryState::Done;
        assert!(e.is_done());
    }

    #[test]
    fn ring_recycles_slots_in_fifo_order() {
        let mut w = WindowRing::new(3); // ring size 4
        assert_eq!(w.ring_size(), 4);
        let a = w.push(None, None, None, [None, None], InstrClass::Nop);
        let b = w.push(None, None, None, [None, None], InstrClass::Nop);
        let c = w.push(None, None, None, [None, None], InstrClass::Nop);
        assert!(w.is_full());
        assert_eq!((a, b, c), (0, 1, 2));
        assert_eq!(w.head_seq(), 0);
        w.pop_front();
        assert!(!w.is_full());
        let d = w.push(Some(64), None, None, [None, None], InstrClass::Halt);
        assert_eq!(d, 3);
        assert!(w.contains(b) && w.contains(d) && !w.contains(a));
        assert_eq!(w.seqs().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn reset_keeps_reclaim_capacity_but_clears_contents() {
        let mut e = InFlight::placeholder();
        e.reclaim.push(crate::rename::PhysReg(4));
        e.reset(None, None, None, [None, None], InstrClass::Nop);
        assert!(e.reclaim.is_empty());
        assert_eq!(e.missing, 0);
    }
}
