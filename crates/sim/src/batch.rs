//! Batched design-space sweeps: N machine configurations in one pass over
//! a shared captured trace.
//!
//! A sweep re-times the *same* dynamic instruction stream across many
//! machine configurations. Running the sweep points serially
//! (`Simulator::run` per config) re-streams the trace once per point and
//! re-derives, N times over, every front-end product that is a pure
//! function of the trace. [`SweepRunner`] instead co-schedules N resumable
//! [`SimSession`]s round-robin over **one** captured trace, sharing the
//! trace-pure state across all members:
//!
//! * the trace buffers themselves — each member reads through its own
//!   [`TraceCursor`], so the dynamic records exist once in memory and the
//!   co-scheduler keeps every cursor inside the same small, cache-hot
//!   region of the trace;
//! * one immutable [`StaticDecodeTable`] instead of N private decode
//!   memos;
//! * one [`BranchOracle`] instead of N identical branch predictors: the
//!   predictor is driven *at fetch in trace order* — `predict`/`update`
//!   for conditional branches, RAS push/pop for calls/returns — so its
//!   entire evolution is independent of issue width, register count, cache
//!   geometry and DVI scheme. The oracle runs one live predictor over the
//!   trace and records the per-branch/per-return misprediction bitstream;
//!   every sweep member then replays the bits instead of carrying (and
//!   thrashing) its own ~100KB of predictor tables. The oracle is shared
//!   only when every member uses the same [`PredictorConfig`]; otherwise
//!   members silently fall back to private live predictors.
//! * one [`IcacheOracle`] instead of N identical L1 instruction caches:
//!   the L1I is likewise touched only at fetch in trace order, so its
//!   hit/miss outcomes are trace-pure per geometry. Only the unified-L2
//!   interaction of each L1I miss — which *is* entangled with the
//!   member's own config-dependent data accesses — stays on the member's
//!   private hierarchy ([`dvi_mem::MemoryHierarchy::inst_fetch_known`]).
//!   Shared only when every member uses the same L1I geometry.
//!
//! # Equivalence
//!
//! Per-member [`SimStats`] are **bit-identical** to serial
//! `Simulator::run(trace.replay())` calls: sessions share no mutable
//! state, the decode table holds exactly what each memo would compute, and
//! the oracle bitstream reproduces each live predictor decision (locked by
//! `tests/batch_equiv.rs` across random presets × machine grids).

use crate::config::SimConfig;
use crate::frontend::{FetchPredictor, StaticDecodeTable};
use crate::session::SimSession;
use crate::stats::SimStats;
use dvi_bpred::{PredictorConfig, PredictorStats};
use dvi_isa::Instr;
use dvi_mem::{AccessKind, Cache, CacheConfig, CacheStats};
use dvi_program::{CapturedTrace, LayoutProgram, TraceCursor};
use std::sync::Arc;

/// A packed bitstream with sequential append and random read.
#[derive(Debug, Default)]
struct BitStream {
    words: Vec<u64>,
    len: usize,
}

impl BitStream {
    fn push(&mut self, bit: bool) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        if bit {
            *self.words.last_mut().expect("just pushed") |= 1 << (self.len % 64);
        }
        self.len += 1;
    }

    #[inline]
    fn get(&self, idx: usize) -> bool {
        (self.words[idx >> 6] >> (idx & 63)) & 1 == 1
    }
}

/// A pre-recorded branch-prediction bitstream for one captured trace.
///
/// One bit per conditional branch or return in the trace, in trace order:
/// whether that control transfer mispredicted under `predictor`. The
/// recording drives a live [`dvi_bpred::CombiningPredictor`] through
/// exactly the event sequence the fetch stage produces (same byte
/// addresses, same RAS pushes), so replaying the bits through an
/// [`OracleCursor`] is indistinguishable from fetching with a private
/// predictor.
#[derive(Debug)]
pub struct BranchOracle {
    /// Packed misprediction bits, one per branch/return record.
    bits: BitStream,
    /// The predictor configuration the bits were recorded under.
    predictor: PredictorConfig,
    /// Full-trace statistics of the recording predictor (what a live
    /// predictor reports after consuming the whole trace).
    totals: PredictorStats,
}

impl BranchOracle {
    /// Runs a live predictor over the whole trace and records the
    /// misprediction bitstream.
    ///
    /// The `match` below mirrors the fetch stage's predictor interaction
    /// record-for-record (see `FrontEnd::fetch`); `tests/batch_equiv.rs`
    /// locks the two together.
    #[must_use]
    pub fn record(trace: &CapturedTrace, predictor: PredictorConfig) -> BranchOracle {
        let mut live = FetchPredictor::live(predictor);
        let mut oracle = BranchOracle {
            bits: BitStream::default(),
            predictor,
            totals: PredictorStats::default(),
        };
        for d in trace.cursor() {
            match d.instr {
                Instr::Branch { .. } => {
                    let mispredicted = live.branch(d.byte_addr(), d.taken.unwrap_or(false));
                    oracle.bits.push(mispredicted);
                }
                Instr::Call { .. } => {
                    live.call(LayoutProgram::byte_addr(d.pc + 1));
                }
                Instr::Return => {
                    let mispredicted = live.ret(LayoutProgram::byte_addr(d.next_pc));
                    oracle.bits.push(mispredicted);
                }
                _ => {}
            }
        }
        oracle.totals = live.stats();
        oracle
    }

    /// Number of recorded prediction events (branches + returns).
    #[must_use]
    pub fn len(&self) -> usize {
        self.bits.len
    }

    /// Whether the trace contained no predicted control transfers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bits.len == 0
    }

    /// The predictor configuration the bitstream was recorded under.
    #[must_use]
    pub fn predictor(&self) -> PredictorConfig {
        self.predictor
    }

    /// Statistics of the recording predictor over the full trace.
    #[must_use]
    pub fn totals(&self) -> PredictorStats {
        self.totals
    }
}

/// A consuming read position into a shared [`BranchOracle`].
///
/// The cursor advances one bit per branch/return fetched and accumulates
/// [`PredictorStats`] as it goes, so a session's predictor statistics are
/// exact at every intermediate position — not just after the full trace.
#[derive(Debug, Clone)]
pub struct OracleCursor {
    oracle: Arc<BranchOracle>,
    idx: usize,
    stats: PredictorStats,
}

impl OracleCursor {
    /// A cursor positioned at the first prediction event.
    #[must_use]
    pub fn new(oracle: Arc<BranchOracle>) -> OracleCursor {
        OracleCursor { oracle, idx: 0, stats: PredictorStats::default() }
    }

    #[inline]
    fn next_bit(&mut self) -> bool {
        assert!(
            self.idx < self.oracle.bits.len,
            "branch oracle exhausted: the session is fetching a different trace \
             than the oracle was recorded from"
        );
        let bit = self.oracle.bits.get(self.idx);
        self.idx += 1;
        bit
    }

    /// Consumes the bit of the next conditional branch; returns whether it
    /// mispredicted.
    #[inline]
    pub(crate) fn branch(&mut self) -> bool {
        self.stats.direction_predictions += 1;
        let mispredicted = self.next_bit();
        if mispredicted {
            self.stats.direction_mispredictions += 1;
        }
        mispredicted
    }

    /// Consumes the bit of the next return; returns whether it
    /// mispredicted.
    #[inline]
    pub(crate) fn ret(&mut self) -> bool {
        self.stats.return_predictions += 1;
        let mispredicted = self.next_bit();
        if mispredicted {
            self.stats.return_mispredictions += 1;
        }
        mispredicted
    }

    /// Statistics over the events consumed so far.
    #[must_use]
    pub(crate) fn stats(&self) -> PredictorStats {
        self.stats
    }
}

/// A pre-recorded L1 instruction-cache outcome bitstream for one captured
/// trace.
///
/// The fetch stage touches the L1I in trace order — one access per cache
/// line entered, plus a next-line prefetch — and nothing else touches it,
/// so for a given L1I geometry the hit/miss outcome of every access is a
/// pure function of the trace. The oracle replays the fetch stage's exact
/// line-change logic over a standalone L1I model once and records the
/// outcome bits; sweep members then bypass their private L1I tag arrays
/// entirely ([`dvi_mem::MemoryHierarchy::inst_fetch_known`]) while still
/// performing each *miss*'s unified-L2 interaction — the part that is
/// entangled with their own, config-dependent data accesses — on their own
/// hierarchy.
#[derive(Debug)]
pub struct IcacheOracle {
    /// Packed hit bits, one per L1I access event in trace order.
    bits: BitStream,
    /// The L1I geometry the bits were recorded under.
    geometry: CacheConfig,
    /// Full-trace statistics of the recording cache.
    totals: CacheStats,
}

impl IcacheOracle {
    /// Replays the fetch stage's I-cache interaction over the whole trace
    /// and records the per-access hit bits.
    ///
    /// The line-change logic below mirrors `FrontEnd::fetch`
    /// access-for-access (one lookup per line entered plus a next-line
    /// prefetch); `tests/batch_equiv.rs` locks the two together.
    #[must_use]
    pub fn record(trace: &CapturedTrace, geometry: CacheConfig) -> IcacheOracle {
        let mut l1i = Cache::new(geometry);
        let line_shift = geometry.line_bytes.trailing_zeros();
        let mut last_line = None;
        let mut bits = BitStream::default();
        for d in trace.cursor() {
            let byte_addr = d.byte_addr();
            let line = byte_addr >> line_shift;
            if last_line != Some(line) {
                last_line = Some(line);
                bits.push(l1i.access(byte_addr, AccessKind::Read).hit);
                bits.push(l1i.access((line + 1) << line_shift, AccessKind::Read).hit);
            }
        }
        IcacheOracle { bits, geometry, totals: l1i.stats() }
    }

    /// Number of recorded L1I access events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bits.len
    }

    /// Whether the trace produced no instruction fetch accesses.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bits.len == 0
    }

    /// The L1I geometry the bitstream was recorded under.
    #[must_use]
    pub fn geometry(&self) -> CacheConfig {
        self.geometry
    }

    /// Statistics of the recording cache over the full trace.
    #[must_use]
    pub fn totals(&self) -> CacheStats {
        self.totals
    }
}

/// A consuming read position into a shared [`IcacheOracle`], accumulating
/// exact L1I [`CacheStats`] as it goes (these replace the bypassed private
/// cache's counters in the member's final [`SimStats`]).
#[derive(Debug, Clone)]
pub struct IcacheCursor {
    oracle: Arc<IcacheOracle>,
    idx: usize,
    stats: CacheStats,
}

impl IcacheCursor {
    /// A cursor positioned at the first access event.
    #[must_use]
    pub fn new(oracle: Arc<IcacheOracle>) -> IcacheCursor {
        IcacheCursor { oracle, idx: 0, stats: CacheStats::default() }
    }

    /// Consumes the next access event; returns whether it hit in the L1I.
    #[inline]
    pub(crate) fn next_hit(&mut self) -> bool {
        assert!(
            self.idx < self.oracle.bits.len,
            "I-cache oracle exhausted: the session is fetching a different trace \
             than the oracle was recorded from"
        );
        let hit = self.oracle.bits.get(self.idx);
        self.idx += 1;
        self.stats.accesses += 1;
        if !hit {
            self.stats.misses += 1;
        }
        hit
    }

    /// Statistics over the events consumed so far.
    #[must_use]
    pub(crate) fn stats(&self) -> CacheStats {
        self.stats
    }
}

/// The bundle of sweep-shared, immutable front-end products a
/// [`SimSession`] can consume in place of its private state. Every field
/// is optional and independently shareable; all of them leave the modelled
/// machine bit-identical (`tests/batch_equiv.rs`).
#[derive(Debug, Clone, Default)]
pub struct SharedTables {
    /// Precomputed per-PC decode records (replaces the private
    /// [`crate::DecodeMemo`]).
    pub decode: Option<Arc<StaticDecodeTable>>,
    /// Pre-recorded branch/return misprediction bits (replaces the private
    /// live predictor; must match the member's predictor configuration).
    pub branches: Option<Arc<BranchOracle>>,
    /// Pre-recorded L1I hit bits (bypasses the private L1I tag array; must
    /// match the member's L1I geometry).
    pub icache: Option<Arc<IcacheOracle>>,
}

/// The smallest sweep for which recording the branch and I-cache oracles
/// pays for itself. Each recording is a full extra pass over the trace
/// (≈ 5 ns/record for the predictor, ≈ 2 ns for the L1I) amortized across
/// the members, while the per-member saving is of the same few-ns order —
/// so a 1–2 member sweep would pay pure overhead. Below the threshold the
/// members simply keep private live structures (the decode table, built
/// from the *static* image in O(code size), is always shared).
const ORACLE_MIN_MEMBERS: usize = 3;

/// How many trace records the co-scheduler advances one member through
/// before re-evaluating which member is furthest behind.
///
/// The chunk bounds how far the member cursors spread through the trace —
/// the region between the laggard and the leader is what stays cache-hot,
/// and 64K records is ≈ 450KB of packed trace, comfortably resident on any
/// host where trace locality matters at all. Within that bound the chunk
/// errs far toward coarse: measured on the reference container (2MB L2 /
/// 260MB L3 Xeon), every member switch re-warms the host cache hierarchy
/// with the incoming member's working set (window ring, rename state,
/// cache tag arrays), costing up to ~30% of throughput at 16-cycle turns
/// and still ~10% at 8K-cycle turns, while the co-hotness it buys is worth
/// nothing there (the whole trace already fits in L3 for the serial loop).
const RECORDS_PER_TURN: u64 = 65_536;

/// Co-schedules N resumable sessions — one per machine configuration —
/// over a single shared captured trace. See the module documentation for
/// what is shared and the equivalence guarantee.
///
/// # Example
///
/// ```
/// use dvi_program::CapturedTrace;
/// use dvi_sim::{batch::SweepRunner, SimConfig};
///
/// # let program = dvi_workloads::generate(&dvi_workloads::WorkloadSpec::small("doc", 1));
/// # let abi = dvi_isa::Abi::mips_like();
/// # let compiled =
/// #     dvi_compiler::compile(&program, &abi, dvi_compiler::CompileOptions::default()).unwrap();
/// # let layout = compiled.program.layout().unwrap();
/// let trace = CapturedTrace::record(&layout, 10_000);
/// let configs = [34usize, 48, 64, 80]
///     .map(|n| SimConfig::micro97().with_phys_regs(n));
/// let stats = SweepRunner::new(&trace, configs).run();
/// assert_eq!(stats.len(), 4);
/// assert!(stats.iter().all(|s| !s.deadlocked));
/// ```
#[derive(Debug)]
pub struct SweepRunner<'a> {
    trace: &'a CapturedTrace,
    members: Vec<Member<'a>>,
    shared: SharedTables,
}

/// One sweep member's lifecycle. Sessions are materialized only when first
/// scheduled and retired to their statistics the moment they drain, so at
/// any instant only the members actually inside the current trace window
/// hold live pipeline state — when the scheduling chunk covers the whole
/// trace that is *one* session at a time, and its allocations are recycled
/// member to member (the hand-rolled serial loop's allocator warmth,
/// measured worth ~10% on the reference container, is preserved).
#[derive(Debug)]
enum Member<'a> {
    /// Not yet scheduled; holds the configuration to build the session
    /// from.
    Pending(Box<SimConfig>),
    /// Currently holding live pipeline state.
    Active(Box<SimSession<TraceCursor<'a>>>),
    /// Finished; holds the final statistics.
    Done(Box<SimStats>),
}

impl Member<'_> {
    /// The member's position in the trace: records fetched so far, or
    /// `None` once finished.
    fn position(&self) -> Option<u64> {
        match self {
            Member::Pending(_) => Some(0),
            Member::Active(session) => Some(session.stats().fetched_instrs),
            Member::Done(_) => None,
        }
    }
}

impl<'a> SweepRunner<'a> {
    /// Prepares one member per configuration, all reading `trace` through
    /// independent cursors. The static-decode table is always shared; the
    /// branch and I-cache oracles are shared when every configuration
    /// agrees on the predictor configuration / L1I geometry respectively
    /// (members with a divergent one would need different bitstreams, so a
    /// heterogeneous batch falls back to the private live structure) *and*
    /// the sweep is large enough to amortize recording them
    /// ([`ORACLE_MIN_MEMBERS`]).
    #[must_use]
    pub fn new(trace: &'a CapturedTrace, configs: impl IntoIterator<Item = SimConfig>) -> Self {
        let configs: Vec<SimConfig> = configs.into_iter().collect();
        let mut shared = SharedTables {
            decode: Some(Arc::new(StaticDecodeTable::for_trace(trace))),
            branches: None,
            icache: None,
        };
        if let Some(first) = configs.first().filter(|_| configs.len() >= ORACLE_MIN_MEMBERS) {
            if configs.iter().all(|c| c.predictor == first.predictor) {
                shared.branches = Some(Arc::new(BranchOracle::record(trace, first.predictor)));
            }
            if configs.iter().all(|c| c.icache == first.icache) {
                shared.icache = Some(Arc::new(IcacheOracle::record(trace, first.icache)));
            }
        }
        let members = configs.into_iter().map(|c| Member::Pending(Box::new(c))).collect();
        SweepRunner { trace, members, shared }
    }

    /// Number of sweep members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the sweep has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Runs every member to completion over the shared trace and returns
    /// the per-configuration statistics, in the order the configurations
    /// were given.
    ///
    /// Scheduling policy: always advance the member furthest *behind* in
    /// the trace (fewest records fetched), [`RECORDS_PER_TURN`] records at
    /// a time. This bounds how far the live cursors spread through the
    /// trace regardless of how fast each machine consumes instructions —
    /// and because sessions share no mutable state, the schedule has no
    /// effect on the statistics themselves. Traces no longer than the
    /// chunk degenerate to one member at a time, which is exactly the
    /// cheapest schedule when the whole trace is cache-resident anyway
    /// (see [`RECORDS_PER_TURN`]).
    #[must_use]
    pub fn run(mut self) -> Vec<SimStats> {
        loop {
            let mut laggard: Option<(usize, u64)> = None;
            for (i, member) in self.members.iter().enumerate() {
                let Some(pos) = member.position() else { continue };
                if laggard.is_none_or(|(_, best)| pos < best) {
                    laggard = Some((i, pos));
                }
            }
            let Some((i, pos)) = laggard else { break };
            self.advance(i, pos + RECORDS_PER_TURN);
        }
        self.members
            .into_iter()
            .map(|m| match m {
                Member::Done(stats) => *stats,
                _ => unreachable!("every member is finished when the laggard scan comes up empty"),
            })
            .collect()
    }

    /// Advances member `i` until it has fetched `target` records,
    /// materializing its session on first schedule and retiring it to bare
    /// statistics the moment it finishes.
    fn advance(&mut self, i: usize, target: u64) {
        let member = &mut self.members[i];
        if let Member::Pending(config) = member {
            *member = Member::Active(Box::new(SimSession::with_shared_tables(
                (**config).clone(),
                self.trace.cursor(),
                self.shared.clone(),
            )));
        }
        let Member::Active(session) = member else {
            unreachable!("the scheduler only advances unfinished members")
        };
        if !session.advance_until_fetched(target) {
            let Member::Active(session) = std::mem::replace(member, Member::Done(Box::default()))
            else {
                unreachable!("checked active above")
            };
            *member = Member::Done(Box::new(session.finish()));
        }
    }
}

/// Convenience wrapper: runs `configs` over `trace` in one batched pass
/// and returns the per-configuration statistics.
#[must_use]
pub fn sweep(trace: &CapturedTrace, configs: impl IntoIterator<Item = SimConfig>) -> Vec<SimStats> {
    SweepRunner::new(trace, configs).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;
    use dvi_core::DviConfig;
    use dvi_isa::Abi;

    fn small_trace() -> CapturedTrace {
        let spec = dvi_workloads::WorkloadSpec::small("batch-unit", 7);
        let program = dvi_workloads::generate(&spec);
        let abi = Abi::mips_like();
        let compiled =
            dvi_compiler::compile(&program, &abi, dvi_compiler::CompileOptions::default())
                .expect("workload compiles");
        let layout = compiled.program.layout().expect("binary lays out");
        CapturedTrace::record(&layout, 8_000)
    }

    #[test]
    fn oracle_totals_match_cursor_at_end_of_trace() {
        let trace = small_trace();
        let oracle = Arc::new(BranchOracle::record(&trace, PredictorConfig::micro97()));
        assert!(!oracle.is_empty(), "the workload must contain branches");
        let mut cursor = OracleCursor::new(oracle.clone());
        for d in trace.cursor() {
            match d.instr {
                Instr::Branch { .. } => {
                    let _ = cursor.branch();
                }
                Instr::Return => {
                    let _ = cursor.ret();
                }
                _ => {}
            }
        }
        assert_eq!(cursor.stats(), oracle.totals());
    }

    #[test]
    fn empty_sweep_returns_no_stats() {
        let trace = small_trace();
        assert!(SweepRunner::new(&trace, []).is_empty());
        assert!(sweep(&trace, []).is_empty());
    }

    #[test]
    fn heterogeneous_predictors_fall_back_to_private_predictors() {
        let trace = small_trace();
        let configs = vec![
            SimConfig::micro97().with_dvi(DviConfig::full()),
            SimConfig {
                predictor: dvi_bpred::PredictorConfig::tiny(),
                ..SimConfig::micro97().with_dvi(DviConfig::full())
            },
        ];
        let batched = sweep(&trace, configs.clone());
        for (config, batched) in configs.into_iter().zip(&batched) {
            let serial = Simulator::new(config).run(trace.replay());
            assert_eq!(&serial, batched, "mixed-predictor batch must still be bit-identical");
            assert!(!batched.deadlocked);
        }
    }
}
