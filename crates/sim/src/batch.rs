//! Batched design-space sweeps: N machine configurations in one pass over
//! a shared captured trace.
//!
//! A sweep re-times the *same* dynamic instruction stream across many
//! machine configurations. Running the sweep points serially
//! (`Simulator::run` per config) re-streams the trace once per point and
//! re-derives, N times over, every front-end product that is a pure
//! function of the trace. [`SweepRunner`] instead co-schedules N resumable
//! [`SimSession`]s round-robin over **one** captured trace, sharing the
//! trace-pure state across all members:
//!
//! * the trace buffers themselves — each member reads through its own
//!   [`TraceCursor`], so the dynamic records exist once in memory and the
//!   co-scheduler keeps every cursor inside the same small, cache-hot
//!   region of the trace;
//! * one immutable [`StaticDecodeTable`] instead of N private decode
//!   memos;
//! * one [`BranchOracle`] instead of N identical branch predictors: the
//!   predictor is driven *at fetch in trace order* — `predict`/`update`
//!   for conditional branches, RAS push/pop for calls/returns — so its
//!   entire evolution is independent of issue width, register count, cache
//!   geometry and DVI scheme. The oracle runs one live predictor over the
//!   trace and records the per-branch/per-return misprediction bitstream;
//!   every sweep member then replays the bits instead of carrying (and
//!   thrashing) its own ~100KB of predictor tables. The oracle is shared
//!   only when every member uses the same [`PredictorConfig`]; otherwise
//!   members silently fall back to private live predictors.
//! * one [`IcacheOracle`] instead of N identical L1 instruction caches:
//!   the L1I is likewise touched only at fetch in trace order, so its
//!   hit/miss outcomes are trace-pure per geometry. Only the unified-L2
//!   interaction of each L1I miss — which *is* entangled with the
//!   member's own config-dependent data accesses — stays on the member's
//!   private hierarchy ([`dvi_mem::MemoryHierarchy::inst_fetch_known`]).
//!   Shared only when every member uses the same L1I geometry.
//! * one [`dvi_program::DepGraph`] instead of N alias-table walks: the
//!   dynamic def-use structure of the trace is machine-independent, so
//!   dispatch wires each window entry directly to its producers' window
//!   sequence numbers and the rename table drops out of the dependence
//!   path entirely (it still owns free-list occupancy and reclaim timing,
//!   which *are* machine state).
//! * one [`DviOracle`] per distinct DVI configuration instead of N live
//!   LVM / LVM-Stack instances: decode-stage DVI is in-order and
//!   trace-pure given a [`dvi_core::DviConfig`], so the
//!   reclaim/elimination event stream is recorded once per distinct
//!   configuration on the grid and shared by every member that agrees on
//!   it (fig05/fig06 vary the DVI axis; members in undersized groups fall
//!   back to live engines).
//!
//! # Equivalence
//!
//! Per-member [`SimStats`] are **bit-identical** to serial
//! `Simulator::run(trace.replay())` calls: sessions share no mutable
//! state, the decode table holds exactly what each memo would compute, and
//! the oracle bitstream reproduces each live predictor decision (locked by
//! `tests/batch_equiv.rs` across random presets × machine grids).
//!
//! # Parallelism
//!
//! Because members share nothing mutable — every shared product is an
//! [`Arc`] of immutable, `Sync` data (compile-time-asserted below) — a
//! sweep also runs *across threads*: [`SweepRunner::run_parallel`]
//! distributes the members over the host's cores, each running to
//! completion privately, with statistics bit-identical to the serial
//! runner at any thread count (`tests/parallel_equiv.rs`).

use crate::config::{DmemGeometry, SimConfig};
use crate::dvi_engine::{DviEngine, ReclaimList};
use crate::frontend::{FetchPredictor, StaticDecodeTable};
use crate::rename::RenameState;
use crate::session::SimSession;
use crate::stats::SimStats;
use dvi_bpred::{PredictorConfig, PredictorStats};
use dvi_core::{DviConfig, DviStats};
use dvi_isa::{Abi, Instr, RegMask, NUM_ARCH_REGS};
use dvi_mem::{AccessKind, Cache, CacheConfig, CacheStats};
use dvi_program::{CapturedTrace, DepGraph, LayoutProgram, TraceCursor};
use rayon::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Compile-time proof that one copy of every sweep-shared product can be
/// read concurrently from many member threads: the parallel runner hands
/// `Arc`s of these across [`std::thread::scope`] / rayon workers, so a
/// non-`Sync` field sneaking into any of them must fail the build here,
/// not a customer's sweep.
const _: () = {
    const fn shared_across_member_threads<T: Send + Sync>() {}
    shared_across_member_threads::<CapturedTrace>();
    shared_across_member_threads::<StaticDecodeTable>();
    shared_across_member_threads::<BranchOracle>();
    shared_across_member_threads::<IcacheOracle>();
    shared_across_member_threads::<DviOracle>();
    shared_across_member_threads::<DepGraph>();
    shared_across_member_threads::<SharedTables>();
};

/// A packed bitstream with sequential append and random read.
#[derive(Debug, Default)]
struct BitStream {
    words: Vec<u64>,
    len: usize,
}

impl BitStream {
    fn push(&mut self, bit: bool) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        if bit {
            *self.words.last_mut().expect("just pushed") |= 1 << (self.len % 64);
        }
        self.len += 1;
    }

    #[inline]
    fn get(&self, idx: usize) -> bool {
        (self.words[idx >> 6] >> (idx & 63)) & 1 == 1
    }
}

/// A pre-recorded branch-prediction bitstream for one captured trace.
///
/// One bit per conditional branch or return in the trace, in trace order:
/// whether that control transfer mispredicted under `predictor`. The
/// recording drives a live [`dvi_bpred::CombiningPredictor`] through
/// exactly the event sequence the fetch stage produces (same byte
/// addresses, same RAS pushes), so replaying the bits through an
/// [`OracleCursor`] is indistinguishable from fetching with a private
/// predictor.
#[derive(Debug)]
pub struct BranchOracle {
    /// Packed misprediction bits, one per branch/return record.
    bits: BitStream,
    /// The predictor configuration the bits were recorded under.
    predictor: PredictorConfig,
    /// Full-trace statistics of the recording predictor (what a live
    /// predictor reports after consuming the whole trace).
    totals: PredictorStats,
}

impl BranchOracle {
    /// Runs a live predictor over the whole trace and records the
    /// misprediction bitstream.
    ///
    /// The `match` below mirrors the fetch stage's predictor interaction
    /// record-for-record (see `FrontEnd::fetch`); `tests/batch_equiv.rs`
    /// locks the two together.
    #[must_use]
    pub fn record(trace: &CapturedTrace, predictor: PredictorConfig) -> BranchOracle {
        let mut live = FetchPredictor::live(predictor);
        let mut oracle = BranchOracle {
            bits: BitStream::default(),
            predictor,
            totals: PredictorStats::default(),
        };
        for d in trace.cursor() {
            match d.instr {
                Instr::Branch { .. } => {
                    let mispredicted = live.branch(d.byte_addr(), d.taken.unwrap_or(false));
                    oracle.bits.push(mispredicted);
                }
                Instr::Call { .. } => {
                    live.call(LayoutProgram::byte_addr(d.pc + 1));
                }
                Instr::Return => {
                    let mispredicted = live.ret(LayoutProgram::byte_addr(d.next_pc));
                    oracle.bits.push(mispredicted);
                }
                _ => {}
            }
        }
        oracle.totals = live.stats();
        oracle
    }

    /// Number of recorded prediction events (branches + returns).
    #[must_use]
    pub fn len(&self) -> usize {
        self.bits.len
    }

    /// Whether the trace contained no predicted control transfers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bits.len == 0
    }

    /// The predictor configuration the bitstream was recorded under.
    #[must_use]
    pub fn predictor(&self) -> PredictorConfig {
        self.predictor
    }

    /// Statistics of the recording predictor over the full trace.
    #[must_use]
    pub fn totals(&self) -> PredictorStats {
        self.totals
    }
}

/// A consuming read position into a shared [`BranchOracle`].
///
/// The cursor advances one bit per branch/return fetched and accumulates
/// [`PredictorStats`] as it goes, so a session's predictor statistics are
/// exact at every intermediate position — not just after the full trace.
#[derive(Debug, Clone)]
pub struct OracleCursor {
    oracle: Arc<BranchOracle>,
    idx: usize,
    stats: PredictorStats,
}

impl OracleCursor {
    /// A cursor positioned at the first prediction event.
    #[must_use]
    pub fn new(oracle: Arc<BranchOracle>) -> OracleCursor {
        OracleCursor { oracle, idx: 0, stats: PredictorStats::default() }
    }

    #[inline]
    fn next_bit(&mut self) -> bool {
        assert!(
            self.idx < self.oracle.bits.len,
            "branch oracle exhausted: the session is fetching a different trace \
             than the oracle was recorded from"
        );
        let bit = self.oracle.bits.get(self.idx);
        self.idx += 1;
        bit
    }

    /// Consumes the bit of the next conditional branch; returns whether it
    /// mispredicted.
    #[inline]
    pub(crate) fn branch(&mut self) -> bool {
        self.stats.direction_predictions += 1;
        let mispredicted = self.next_bit();
        if mispredicted {
            self.stats.direction_mispredictions += 1;
        }
        mispredicted
    }

    /// Consumes the bit of the next return; returns whether it
    /// mispredicted.
    #[inline]
    pub(crate) fn ret(&mut self) -> bool {
        self.stats.return_predictions += 1;
        let mispredicted = self.next_bit();
        if mispredicted {
            self.stats.return_mispredictions += 1;
        }
        mispredicted
    }

    /// Statistics over the events consumed so far.
    #[must_use]
    pub(crate) fn stats(&self) -> PredictorStats {
        self.stats
    }
}

/// A pre-recorded L1 instruction-cache outcome bitstream for one captured
/// trace.
///
/// The fetch stage touches the L1I in trace order — one access per cache
/// line entered, plus a next-line prefetch — and nothing else touches it,
/// so for a given L1I geometry the hit/miss outcome of every access is a
/// pure function of the trace. The oracle replays the fetch stage's exact
/// line-change logic over a standalone L1I model once and records the
/// outcome bits; sweep members then bypass their private L1I tag arrays
/// entirely ([`dvi_mem::MemoryHierarchy::inst_fetch_known`]) while still
/// performing each *miss*'s unified-L2 interaction — the part that is
/// entangled with their own, config-dependent data accesses — on their own
/// hierarchy.
#[derive(Debug)]
pub struct IcacheOracle {
    /// Packed hit bits, one per L1I access event in trace order.
    bits: BitStream,
    /// The L1I geometry the bits were recorded under.
    geometry: CacheConfig,
    /// Full-trace statistics of the recording cache.
    totals: CacheStats,
}

impl IcacheOracle {
    /// Replays the fetch stage's I-cache interaction over the whole trace
    /// and records the per-access hit bits.
    ///
    /// The line-change logic below mirrors `FrontEnd::fetch`
    /// access-for-access (one lookup per line entered plus a next-line
    /// prefetch); `tests/batch_equiv.rs` locks the two together.
    #[must_use]
    pub fn record(trace: &CapturedTrace, geometry: CacheConfig) -> IcacheOracle {
        let mut l1i = Cache::new(geometry);
        let line_shift = geometry.line_bytes.trailing_zeros();
        let mut last_line = None;
        let mut bits = BitStream::default();
        for d in trace.cursor() {
            let byte_addr = d.byte_addr();
            let line = byte_addr >> line_shift;
            if last_line != Some(line) {
                last_line = Some(line);
                bits.push(l1i.access(byte_addr, AccessKind::Read).hit);
                bits.push(l1i.access((line + 1) << line_shift, AccessKind::Read).hit);
            }
        }
        IcacheOracle { bits, geometry, totals: l1i.stats() }
    }

    /// Number of recorded L1I access events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bits.len
    }

    /// Whether the trace produced no instruction fetch accesses.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bits.len == 0
    }

    /// The L1I geometry the bitstream was recorded under.
    #[must_use]
    pub fn geometry(&self) -> CacheConfig {
        self.geometry
    }

    /// Statistics of the recording cache over the full trace.
    #[must_use]
    pub fn totals(&self) -> CacheStats {
        self.totals
    }
}

/// A consuming read position into a shared [`IcacheOracle`], accumulating
/// exact L1I [`CacheStats`] as it goes (these replace the bypassed private
/// cache's counters in the member's final [`SimStats`]).
#[derive(Debug, Clone)]
pub struct IcacheCursor {
    oracle: Arc<IcacheOracle>,
    idx: usize,
    stats: CacheStats,
}

impl IcacheCursor {
    /// A cursor positioned at the first access event.
    #[must_use]
    pub fn new(oracle: Arc<IcacheOracle>) -> IcacheCursor {
        IcacheCursor { oracle, idx: 0, stats: CacheStats::default() }
    }

    /// Consumes the next access event; returns whether it hit in the L1I.
    #[inline]
    pub(crate) fn next_hit(&mut self) -> bool {
        assert!(
            self.idx < self.oracle.bits.len,
            "I-cache oracle exhausted: the session is fetching a different trace \
             than the oracle was recorded from"
        );
        let hit = self.oracle.bits.get(self.idx);
        self.idx += 1;
        self.stats.accesses += 1;
        if !hit {
            self.stats.misses += 1;
        }
        hit
    }

    /// Statistics over the events consumed so far.
    #[must_use]
    pub(crate) fn stats(&self) -> CacheStats {
        self.stats
    }
}

/// A pre-recorded decode-stage DVI event stream for one captured trace and
/// one [`DviConfig`].
///
/// Decode-stage DVI is driven strictly in trace order at dispatch — kills,
/// calls, returns, save/restore elimination checks and destination renames
/// — and every decision it makes (which saves/restores are eliminated,
/// which architectural registers lose their mapping at which event) is a
/// pure function of the trace and the DVI configuration: machine width,
/// register-file size and cache geometry never enter. A sweep therefore
/// records the stream **once per distinct [`DviConfig`] on the grid** by
/// running one live [`DviEngine`] (plus a shadow mapped-bit tracker
/// standing in for the alias table) over the trace, and every member that
/// agrees on the DVI configuration replays the recorded decisions through
/// a [`DviCursor`] instead of carrying its own LVM / LVM-Stack machinery.
///
/// Replay is indistinguishable from the live engine: elimination decisions,
/// unmap order (and therefore free-list order and every downstream
/// allocation) and [`DviStats`] are bit-identical, locked by
/// `tests/batch_equiv.rs` and `tests/depgraph_equiv.rs`.
#[derive(Debug)]
pub struct DviOracle {
    /// The DVI configuration the stream was recorded under.
    config: DviConfig,
    /// One bit per `live-store`/`live-load` record in trace order: whether
    /// the decode stage eliminates it.
    elim: BitStream,
    /// One mask per `kill`/`call`/`return` record in trace order: the
    /// architectural registers whose mappings the event removes.
    unmaps: Vec<RegMask>,
    /// Size of the ABI's I-DVI mask (for exact `idvi_regs_killed`
    /// accounting during replay).
    idvi_mask_len: u64,
}

impl DviOracle {
    /// Runs the decode-stage DVI machinery over the whole trace and
    /// records the elimination bits and unmap masks.
    ///
    /// The `match` below mirrors `FrontEnd::next_dispatch` event for event
    /// — elimination guards before dispatch, destination renames before
    /// call events — so the recorded stream cannot diverge from what a
    /// live engine would decide at dispatch time.
    #[must_use]
    pub fn record(trace: &CapturedTrace, config: DviConfig) -> DviOracle {
        let abi = Abi::mips_like();
        let mut oracle = DviOracle {
            config,
            elim: BitStream::default(),
            unmaps: Vec::new(),
            idvi_mask_len: abi.idvi_mask().len() as u64,
        };
        let mut engine = DviEngine::new(config, abi);
        // Shadow alias-table occupancy: at reset every architectural
        // register is mapped. Only mapped-ness matters to the recorded
        // decisions; the physical names differ per member and stay theirs.
        let mut mapped = [true; NUM_ARCH_REGS];
        // The shadow unmap action: clear the mapped bit and collect the
        // register into the event's recorded mask.
        fn shadow<'a>(
            mapped: &'a mut [bool; NUM_ARCH_REGS],
            out: &'a mut RegMask,
        ) -> impl FnMut(dvi_isa::ArchReg) -> bool + 'a {
            move |reg| {
                let slot = &mut mapped[reg.index()];
                let was_mapped = *slot;
                if was_mapped {
                    *slot = false;
                    out.insert(reg);
                }
                was_mapped
            }
        }
        for d in trace.cursor() {
            match d.instr {
                Instr::Kill { mask } => {
                    let mut unmapped = RegMask::empty();
                    engine.on_kill(mask, shadow(&mut mapped, &mut unmapped));
                    oracle.unmaps.push(unmapped);
                }
                Instr::LiveStore { rs, .. } => oracle.elim.push(engine.on_save(rs)),
                Instr::LiveLoad { rd, .. } => {
                    let eliminated = engine.on_restore(rd);
                    oracle.elim.push(eliminated);
                    if !eliminated {
                        // The restore dispatches: destination renaming
                        // re-maps the register and marks it live.
                        mapped[rd.index()] = true;
                        engine.on_dest_rename(rd);
                    }
                }
                Instr::Call { .. } => {
                    // Dispatch renames the destination (the return-address
                    // register) before the decode-stage call event.
                    if let Some(rd) = d.instr.dst_reg() {
                        mapped[rd.index()] = true;
                        engine.on_dest_rename(rd);
                    }
                    let mut unmapped = RegMask::empty();
                    engine.on_call(shadow(&mut mapped, &mut unmapped));
                    oracle.unmaps.push(unmapped);
                }
                Instr::Return => {
                    let mut unmapped = RegMask::empty();
                    engine.on_return(shadow(&mut mapped, &mut unmapped));
                    oracle.unmaps.push(unmapped);
                }
                _ => {
                    if let Some(rd) = d.instr.dst_reg() {
                        mapped[rd.index()] = true;
                        engine.on_dest_rename(rd);
                    }
                }
            }
        }
        oracle
    }

    /// The DVI configuration the stream was recorded under.
    #[must_use]
    pub fn config(&self) -> DviConfig {
        self.config
    }

    /// Number of recorded elimination decisions (saves + restores).
    #[must_use]
    pub fn len(&self) -> usize {
        self.elim.len
    }

    /// Whether the trace contained no saves or restores.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.elim.len == 0
    }

    /// Number of recorded unmap events (kills + calls + returns).
    #[must_use]
    pub fn unmap_events(&self) -> usize {
        self.unmaps.len()
    }

    /// The recorded elimination decision of the `idx`-th save/restore in
    /// trace order (differential-test inspection).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn eliminated(&self, idx: usize) -> bool {
        assert!(idx < self.elim.len, "elimination index out of range");
        self.elim.get(idx)
    }

    /// The recorded unmap mask of the `event`-th kill/call/return in trace
    /// order (differential-test inspection).
    ///
    /// # Panics
    ///
    /// Panics if `event` is out of range.
    #[must_use]
    pub fn unmap_mask(&self, event: usize) -> RegMask {
        self.unmaps[event]
    }
}

/// A consuming read position into a shared [`DviOracle`], accumulating
/// exact [`DviStats`] as it goes (these replace the bypassed live engine's
/// counters in the member's final statistics).
#[derive(Debug, Clone)]
pub struct DviCursor {
    oracle: Arc<DviOracle>,
    /// Next elimination bit (saves/restores, trace order).
    elim_idx: usize,
    /// Next unmap mask (kills/calls/returns, trace order).
    unmap_idx: usize,
    stats: DviStats,
}

impl DviCursor {
    /// A cursor positioned at the first event.
    #[must_use]
    pub fn new(oracle: Arc<DviOracle>) -> DviCursor {
        DviCursor { oracle, elim_idx: 0, unmap_idx: 0, stats: DviStats::new() }
    }

    /// Applies the next unmap event to the member's own alias table,
    /// queueing the released physical registers (the member still owes the
    /// reclaim *timing*: the registers ride the next dispatched window
    /// entry to commit, exactly as with a live engine).
    fn apply_unmaps(&mut self, rename: &mut RenameState, out: &mut ReclaimList) {
        assert!(
            self.unmap_idx < self.oracle.unmaps.len(),
            "DVI oracle exhausted: the session is dispatching a different trace \
             than the oracle was recorded from"
        );
        let mask = self.oracle.unmaps[self.unmap_idx];
        self.unmap_idx += 1;
        for reg in mask.iter() {
            let p = rename
                .unmap(reg)
                .expect("DVI oracle unmapped a register the member has no mapping for");
            out.push(p);
        }
        self.stats.phys_regs_reclaimed_early += mask.len() as u64;
    }

    /// The next elimination bit without consuming it (a stalled dispatch
    /// re-attempts the same save/restore).
    fn peek_elim(&self) -> bool {
        assert!(
            self.elim_idx < self.oracle.elim.len,
            "DVI oracle exhausted: the session is dispatching a different trace \
             than the oracle was recorded from"
        );
        self.oracle.elim.get(self.elim_idx)
    }

    /// An explicit `kill` consumed at decode (`mask` is the static kill
    /// mask, for exact E-DVI accounting).
    pub(crate) fn on_kill(
        &mut self,
        mask: RegMask,
        rename: &mut RenameState,
        out: &mut ReclaimList,
    ) {
        if self.oracle.config.use_edvi {
            self.stats.edvi_instructions += 1;
            self.stats.edvi_regs_killed += mask.len() as u64;
        }
        self.apply_unmaps(rename, out);
    }

    /// A dispatch attempt on a save. Counts the attempt (a save stalled
    /// behind a full window is re-attempted and re-counted, exactly like
    /// the live engine) and consumes the bit only when it eliminates.
    pub(crate) fn on_save_attempt(&mut self) -> bool {
        self.stats.saves_seen += 1;
        let eliminated = self.peek_elim();
        if eliminated {
            self.stats.saves_eliminated += 1;
            self.elim_idx += 1;
        }
        eliminated
    }

    /// A dispatch attempt on a restore (see [`DviCursor::on_save_attempt`]).
    pub(crate) fn on_restore_attempt(&mut self) -> bool {
        self.stats.restores_seen += 1;
        let eliminated = self.peek_elim();
        if eliminated {
            self.stats.restores_eliminated += 1;
            self.elim_idx += 1;
        }
        eliminated
    }

    /// A non-eliminated save/restore entered the window: its (false)
    /// elimination bit is consumed.
    pub(crate) fn on_save_restore_dispatched(&mut self) {
        self.elim_idx += 1;
    }

    /// A procedure call dispatched.
    pub(crate) fn on_call(&mut self, rename: &mut RenameState, out: &mut ReclaimList) {
        if self.oracle.config.use_idvi {
            self.stats.idvi_regs_killed += self.oracle.idvi_mask_len;
        }
        self.apply_unmaps(rename, out);
    }

    /// A procedure return dispatched.
    pub(crate) fn on_return(&mut self, rename: &mut RenameState, out: &mut ReclaimList) {
        if self.oracle.config.use_idvi {
            self.stats.idvi_regs_killed += self.oracle.idvi_mask_len;
        }
        self.apply_unmaps(rename, out);
    }

    /// Statistics over the events consumed so far.
    #[must_use]
    pub(crate) fn stats(&self) -> DviStats {
        self.stats
    }
}

/// The bundle of sweep-shared, immutable trace-pure products a
/// [`SimSession`] can consume in place of its private state. Every field
/// is optional and independently shareable; all of them leave the modelled
/// machine bit-identical (`tests/batch_equiv.rs`).
#[derive(Debug, Clone, Default)]
pub struct SharedTables {
    /// Precomputed per-PC decode records (replaces the private
    /// [`crate::DecodeMemo`]).
    pub decode: Option<Arc<StaticDecodeTable>>,
    /// Pre-recorded branch/return misprediction bits (replaces the private
    /// live predictor; must match the member's predictor configuration).
    pub branches: Option<Arc<BranchOracle>>,
    /// Pre-recorded L1I hit bits (bypasses the private L1I tag array; must
    /// match the member's L1I geometry).
    pub icache: Option<Arc<IcacheOracle>>,
    /// The trace's precomputed dependence graph
    /// ([`dvi_program::DepGraph`]): dispatch wires window entries directly
    /// to their producers' window sequence numbers instead of renaming
    /// sources through the alias table (event-driven scheduler only).
    pub depgraph: Option<Arc<DepGraph>>,
    /// Pre-recorded decode-stage DVI event stream (replaces the private
    /// live [`DviEngine`]; must match the member's [`DviConfig`]).
    pub dvi: Option<Arc<DviOracle>>,
}

/// The default of [`SweepRunner::with_oracle_min_members`]: the smallest
/// number of members sharing a recorded oracle for which the recording
/// pays for itself. Each recording is a full extra pass over the trace
/// (≈ 5 ns/record for the predictor, ≈ 2 ns for the L1I or the DVI
/// stream) amortized across the members that share it, while the
/// per-member saving is of the same few-ns order — so a stream shared by
/// only 1–2 members would pay pure overhead. Below the threshold members
/// simply keep private live structures (the decode table, built from the
/// *static* image in O(code size), is always shared).
pub const ORACLE_MIN_MEMBERS: usize = 3;

/// How many trace records the co-scheduler advances one member through
/// before re-evaluating which member is furthest behind.
///
/// The chunk bounds how far the member cursors spread through the trace —
/// the region between the laggard and the leader is what stays cache-hot,
/// and 64K records is ≈ 450KB of packed trace, comfortably resident on any
/// host where trace locality matters at all. Within that bound the chunk
/// errs far toward coarse: measured on the reference container (2MB L2 /
/// 260MB L3 Xeon), every member switch re-warms the host cache hierarchy
/// with the incoming member's working set (window ring, rename state,
/// cache tag arrays), costing up to ~30% of throughput at 16-cycle turns
/// and still ~10% at 8K-cycle turns, while the co-hotness it buys is worth
/// nothing there (the whole trace already fits in L3 for the serial loop).
const RECORDS_PER_TURN: u64 = 65_536;

/// Co-schedules N resumable sessions — one per machine configuration —
/// over a single shared captured trace. See the module documentation for
/// what is shared and the equivalence guarantee.
///
/// # Example
///
/// ```
/// use dvi_program::CapturedTrace;
/// use dvi_sim::{batch::SweepRunner, SimConfig};
///
/// # let program = dvi_workloads::generate(&dvi_workloads::WorkloadSpec::small("doc", 1));
/// # let abi = dvi_isa::Abi::mips_like();
/// # let compiled =
/// #     dvi_compiler::compile(&program, &abi, dvi_compiler::CompileOptions::default()).unwrap();
/// # let layout = compiled.program.layout().unwrap();
/// let trace = CapturedTrace::record(&layout, 10_000);
/// let configs = [34usize, 48, 64, 80]
///     .map(|n| SimConfig::micro97().with_phys_regs(n));
/// let stats = SweepRunner::new(&trace, configs).run();
/// assert_eq!(stats.len(), 4);
/// assert!(stats.iter().all(|s| !s.deadlocked));
/// ```
#[derive(Debug)]
pub struct SweepRunner<'a> {
    trace: &'a CapturedTrace,
    members: Vec<Member<'a>>,
    /// Products shared by every member (decode table, and — once
    /// [`SweepRunner::prepare_shared`] has run — the branch/I-cache
    /// oracles and the dependence graph where applicable).
    shared: SharedTables,
    /// One recorded DVI event stream per distinct [`DviConfig`] that
    /// enough members share (members whose group is smaller fall back to
    /// private live engines).
    dvi_oracles: Vec<Arc<DviOracle>>,
    /// Minimum members sharing a recording before it is worth making.
    oracle_min_members: usize,
    /// Whether members wire dispatch through the shared dependence graph
    /// (see [`SweepRunner::without_depgraph`]).
    use_depgraph: bool,
    /// Whether `prepare_shared` has run.
    prepared: bool,
}

/// One sweep member's lifecycle. Sessions are materialized only when first
/// scheduled and retired to their statistics the moment they drain, so at
/// any instant only the members actually inside the current trace window
/// hold live pipeline state — when the scheduling chunk covers the whole
/// trace that is *one* session at a time, and its allocations are recycled
/// member to member (the hand-rolled serial loop's allocator warmth,
/// measured worth ~10% on the reference container, is preserved).
#[derive(Debug)]
enum Member<'a> {
    /// Not yet scheduled; holds the configuration to build the session
    /// from.
    Pending(Box<SimConfig>),
    /// Currently holding live pipeline state.
    Active(Box<SimSession<TraceCursor<'a>>>),
    /// Finished; holds the final statistics.
    Done(Box<SimStats>),
}

impl Member<'_> {
    /// The member's position in the trace: records fetched so far, or
    /// `None` once finished.
    fn position(&self) -> Option<u64> {
        match self {
            Member::Pending(_) => Some(0),
            Member::Active(session) => Some(session.stats().fetched_instrs),
            Member::Done(_) => None,
        }
    }
}

impl<'a> SweepRunner<'a> {
    /// Prepares one member per configuration, all reading `trace` through
    /// independent cursors. The static-decode table is always shared; the
    /// remaining trace-pure products are recorded lazily when the sweep
    /// runs (see [`SweepRunner::prepare_shared`]), so builder options can
    /// still adjust the sharing policy.
    #[must_use]
    pub fn new(trace: &'a CapturedTrace, configs: impl IntoIterator<Item = SimConfig>) -> Self {
        let shared = SharedTables {
            decode: Some(Arc::new(StaticDecodeTable::for_trace(trace))),
            ..SharedTables::default()
        };
        let members = configs.into_iter().map(|c| Member::Pending(Box::new(c))).collect();
        SweepRunner {
            trace,
            members,
            shared,
            dvi_oracles: Vec::new(),
            oracle_min_members: ORACLE_MIN_MEMBERS,
            use_depgraph: true,
            prepared: false,
        }
    }

    /// Disables dependence-graph dispatch wiring for this sweep: members
    /// rename sources through their private alias tables even when the
    /// trace carries a prebuilt graph. A host-time policy knob only —
    /// statistics are bit-identical either way. Useful where the graph's
    /// streamed row traffic (~9 bytes per record per member) outweighs the
    /// skipped alias-table walk; on the reference container the two are
    /// within measurement noise of each other (see the ROADMAP's PR 4
    /// decomposition).
    #[must_use]
    pub fn without_depgraph(mut self) -> Self {
        assert!(!self.prepared, "set the depgraph policy before running the sweep");
        self.use_depgraph = false;
        self
    }

    /// Sets the oracle-recording amortization threshold: a pre-recorded
    /// event stream (branch, I-cache or DVI oracle) is only recorded when
    /// at least `n` members would share it, since each recording costs a
    /// full extra pass over the trace. The default is
    /// [`ORACLE_MIN_MEMBERS`]; `1` forces recording for every product,
    /// `usize::MAX` disables oracle recording entirely. Values below 1 are
    /// clamped to 1. The choice affects host time only — member statistics
    /// are bit-identical either way.
    #[must_use]
    pub fn with_oracle_min_members(mut self, n: usize) -> Self {
        assert!(!self.prepared, "set the oracle threshold before running the sweep");
        self.oracle_min_members = n.max(1);
        self
    }

    /// Records the shareable trace-pure products under the current policy:
    ///
    /// * the **dependence graph** — config-independent, so it is shared by
    ///   every member: taken from the trace when already attached
    ///   ([`CapturedTrace::build_depgraph`]), otherwise built here for
    ///   sweeps of at least two members;
    /// * the **branch** and **I-cache oracles** — when every member agrees
    ///   on the predictor configuration / L1I geometry respectively and
    ///   the sweep meets the amortization threshold;
    /// * one **DVI oracle per distinct [`DviConfig`]** shared by at least
    ///   the threshold number of members (fig05/fig06-style sweeps vary
    ///   the DVI axis, so agreement is per group, not global); members in
    ///   smaller groups fall back to private live engines.
    fn prepare_shared(&mut self) {
        if self.prepared {
            return;
        }
        self.prepared = true;
        let configs: Vec<&SimConfig> = self
            .members
            .iter()
            .map(|m| match m {
                Member::Pending(c) => &**c,
                _ => unreachable!("members are pending until the sweep runs"),
            })
            .collect();
        // Only event-driven members consume the graph (the naive scan's
        // reference loops re-check per-operand ready bits), so a grid
        // without any skips the build entirely.
        let any_event_driven =
            configs.iter().any(|c| c.scheduler == crate::config::SchedulerKind::EventDriven);
        self.shared.depgraph = match self.trace.depgraph() {
            _ if !self.use_depgraph || !any_event_driven => None,
            Some(graph) => Some(Arc::clone(graph)),
            None if configs.len() >= 2 => Some(Arc::new(DepGraph::build(self.trace))),
            None => None,
        };
        if let Some(first) = configs.first().filter(|_| configs.len() >= self.oracle_min_members) {
            if configs.iter().all(|c| c.predictor == first.predictor) {
                self.shared.branches =
                    Some(Arc::new(BranchOracle::record(self.trace, first.predictor)));
            }
            if configs.iter().all(|c| c.icache == first.icache) {
                self.shared.icache = Some(Arc::new(IcacheOracle::record(self.trace, first.icache)));
            }
        }
        let mut groups: Vec<(DviConfig, usize)> = Vec::new();
        for config in &configs {
            match groups.iter_mut().find(|(dvi, _)| *dvi == config.dvi) {
                Some((_, count)) => *count += 1,
                None => groups.push((config.dvi, 1)),
            }
        }
        self.dvi_oracles = groups
            .into_iter()
            .filter(|&(_, count)| count >= self.oracle_min_members)
            .map(|(dvi, _)| Arc::new(DviOracle::record(self.trace, dvi)))
            .collect();
    }

    /// The shared-product bundle member `config` consumes: the globally
    /// shared products plus its DVI group's oracle, if one was recorded.
    fn tables_for(&self, config: &SimConfig) -> SharedTables {
        let mut tables = self.shared.clone();
        tables.dvi = self.dvi_oracles.iter().find(|o| o.config() == config.dvi).map(Arc::clone);
        tables
    }

    /// Number of sweep members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the sweep has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Runs every member to completion over the shared trace and returns
    /// the per-configuration statistics, in the order the configurations
    /// were given.
    ///
    /// Scheduling policy: always advance the member furthest *behind* in
    /// the trace (fewest records fetched), [`RECORDS_PER_TURN`] records at
    /// a time. This bounds how far the live cursors spread through the
    /// trace regardless of how fast each machine consumes instructions —
    /// and because sessions share no mutable state, the schedule has no
    /// effect on the statistics themselves. Traces no longer than the
    /// chunk degenerate to one member at a time, which is exactly the
    /// cheapest schedule when the whole trace is cache-resident anyway
    /// (see [`RECORDS_PER_TURN`]).
    #[must_use]
    pub fn run(mut self) -> Vec<SimStats> {
        self.prepare_shared();
        loop {
            let mut laggard: Option<(usize, u64)> = None;
            for (i, member) in self.members.iter().enumerate() {
                let Some(pos) = member.position() else { continue };
                if laggard.is_none_or(|(_, best)| pos < best) {
                    laggard = Some((i, pos));
                }
            }
            let Some((i, pos)) = laggard else { break };
            self.advance(i, pos + RECORDS_PER_TURN);
        }
        self.members
            .into_iter()
            .map(|m| match m {
                Member::Done(stats) => *stats,
                _ => unreachable!("every member is finished when the laggard scan comes up empty"),
            })
            .collect()
    }

    /// Groups the member indices by data-side geometry
    /// ([`SimConfig::dmem_geometry`]), in first-appearance order. Members
    /// of one group make identical L1D hit/miss decisions for identical
    /// access sequences — the agreement rule a future shared D-cache
    /// product (the data-side analogue of [`IcacheOracle`]) will be
    /// recorded and shared under, exactly as [`DviOracle`]s are grouped
    /// per distinct [`DviConfig`] today.
    #[must_use]
    pub fn dmem_geometry_groups(&self) -> Vec<(DmemGeometry, Vec<usize>)> {
        let mut groups: Vec<(DmemGeometry, Vec<usize>)> = Vec::new();
        for (i, member) in self.members.iter().enumerate() {
            let Member::Pending(config) = member else {
                unreachable!("members are pending until the sweep runs")
            };
            let geometry = config.dmem_geometry();
            match groups.iter_mut().find(|(g, _)| *g == geometry) {
                Some((_, indices)) => indices.push(i),
                None => groups.push((geometry, vec![i])),
            }
        }
        groups
    }

    /// Runs every member to completion across **threads** and returns the
    /// per-configuration statistics in the order the configurations were
    /// given, bit-identical to [`SweepRunner::run`] and to serial replays.
    ///
    /// The shared products are recorded once up front (same policy as the
    /// serial runner), then the members — which share no mutable state,
    /// only `Arc`s of immutable trace-pure products — are distributed
    /// across a rayon worker pool, each running to completion on its own
    /// thread. Determinism is structural, not scheduling-dependent: a
    /// member's statistics are a pure function of its configuration, the
    /// trace and the shared products, so thread count and interleaving
    /// cannot perturb them (locked by `tests/parallel_equiv.rs` across
    /// thread counts).
    ///
    /// Scheduling trade-off versus [`SweepRunner::run`]: the serial
    /// runner's laggard-first co-scheduling keeps all member cursors in
    /// one cache-hot region of the trace; the parallel runner gives that
    /// up in exchange for N cores, each member streaming the whole trace
    /// privately. On a multi-core host with the trace resident in a
    /// shared cache level the trade is clearly right; on one core it
    /// degenerates to the serial member-at-a-time schedule.
    #[must_use]
    pub fn run_parallel(self) -> Vec<SimStats> {
        let (trace, jobs) = self.into_parallel_jobs();
        jobs.into_par_iter().map(|(config, tables)| run_member(trace, config, tables)).collect()
    }

    /// [`SweepRunner::run_parallel`] with an explicit worker-thread count
    /// (clamped to `1..=members`): the knob the equivalence tests and the
    /// bench sweep over. Workers pull members off a shared queue, so a
    /// straggler member does not idle the other threads.
    #[must_use]
    pub fn run_parallel_threads(self, threads: usize) -> Vec<SimStats> {
        let (trace, jobs) = self.into_parallel_jobs();
        let threads = threads.clamp(1, jobs.len().max(1));
        if threads == 1 {
            return jobs.into_iter().map(|(c, t)| run_member(trace, c, t)).collect();
        }
        let next = AtomicUsize::new(0);
        let mut results: Vec<Option<SimStats>> = (0..jobs.len()).map(|_| None).collect();
        let jobs = &jobs;
        let next = &next;
        std::thread::scope(|scope| {
            let workers: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(move || {
                        let mut done = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some((config, tables)) = jobs.get(i) else { break };
                            done.push((i, run_member(trace, config.clone(), tables.clone())));
                        }
                        done
                    })
                })
                .collect();
            for worker in workers {
                for (i, stats) in worker.join().expect("sweep worker panicked") {
                    results[i] = Some(stats);
                }
            }
        });
        results.into_iter().map(|s| s.expect("every member runs exactly once")).collect()
    }

    /// Records the shared products and flattens the pending members into
    /// standalone `(config, tables)` jobs for the parallel runners.
    fn into_parallel_jobs(mut self) -> (&'a CapturedTrace, Vec<(SimConfig, SharedTables)>) {
        self.prepare_shared();
        let tables: Vec<SharedTables> = self
            .members
            .iter()
            .map(|m| match m {
                Member::Pending(config) => self.tables_for(config),
                _ => unreachable!("members are pending until the sweep runs"),
            })
            .collect();
        let jobs = self
            .members
            .into_iter()
            .zip(tables)
            .map(|(m, t)| match m {
                Member::Pending(config) => (*config, t),
                _ => unreachable!("members are pending until the sweep runs"),
            })
            .collect();
        (self.trace, jobs)
    }

    /// Advances member `i` until it has fetched `target` records,
    /// materializing its session on first schedule and retiring it to bare
    /// statistics the moment it finishes.
    fn advance(&mut self, i: usize, target: u64) {
        if let Member::Pending(config) = &self.members[i] {
            let tables = self.tables_for(config);
            self.members[i] = Member::Active(Box::new(SimSession::with_shared_tables(
                (**config).clone(),
                self.trace.cursor(),
                tables,
            )));
        }
        let member = &mut self.members[i];
        let Member::Active(session) = member else {
            unreachable!("the scheduler only advances unfinished members")
        };
        if !session.advance_until_fetched(target) {
            let Member::Active(session) = std::mem::replace(member, Member::Done(Box::default()))
            else {
                unreachable!("checked active above")
            };
            *member = Member::Done(Box::new(session.finish()));
        }
    }
}

/// One member of a parallel sweep, run start to finish on whatever thread
/// picked it up: a fresh session over its own cursor into the shared
/// trace, consuming the shared product bundle by reference.
fn run_member(trace: &CapturedTrace, config: SimConfig, tables: SharedTables) -> SimStats {
    SimSession::with_shared_tables(config, trace.cursor(), tables).run_to_completion()
}

/// Convenience wrapper: runs `configs` over `trace` in one batched pass
/// and returns the per-configuration statistics.
#[must_use]
pub fn sweep(trace: &CapturedTrace, configs: impl IntoIterator<Item = SimConfig>) -> Vec<SimStats> {
    SweepRunner::new(trace, configs).run()
}

/// Convenience wrapper: runs `configs` over `trace` with members
/// distributed across the host's cores ([`SweepRunner::run_parallel`]).
/// Statistics are bit-identical to [`sweep`].
#[must_use]
pub fn sweep_parallel(
    trace: &CapturedTrace,
    configs: impl IntoIterator<Item = SimConfig>,
) -> Vec<SimStats> {
    SweepRunner::new(trace, configs).run_parallel()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;
    use dvi_core::DviConfig;
    use dvi_isa::Abi;

    fn small_trace() -> CapturedTrace {
        let spec = dvi_workloads::WorkloadSpec::small("batch-unit", 7);
        let program = dvi_workloads::generate(&spec);
        let abi = Abi::mips_like();
        let compiled =
            dvi_compiler::compile(&program, &abi, dvi_compiler::CompileOptions::default())
                .expect("workload compiles");
        let layout = compiled.program.layout().expect("binary lays out");
        CapturedTrace::record(&layout, 8_000)
    }

    #[test]
    fn oracle_totals_match_cursor_at_end_of_trace() {
        let trace = small_trace();
        let oracle = Arc::new(BranchOracle::record(&trace, PredictorConfig::micro97()));
        assert!(!oracle.is_empty(), "the workload must contain branches");
        let mut cursor = OracleCursor::new(oracle.clone());
        for d in trace.cursor() {
            match d.instr {
                Instr::Branch { .. } => {
                    let _ = cursor.branch();
                }
                Instr::Return => {
                    let _ = cursor.ret();
                }
                _ => {}
            }
        }
        assert_eq!(cursor.stats(), oracle.totals());
    }

    #[test]
    fn empty_sweep_returns_no_stats() {
        let trace = small_trace();
        assert!(SweepRunner::new(&trace, []).is_empty());
        assert!(sweep(&trace, []).is_empty());
    }

    #[test]
    fn heterogeneous_predictors_fall_back_to_private_predictors() {
        let trace = small_trace();
        let configs = vec![
            SimConfig::micro97().with_dvi(DviConfig::full()),
            SimConfig {
                predictor: dvi_bpred::PredictorConfig::tiny(),
                ..SimConfig::micro97().with_dvi(DviConfig::full())
            },
        ];
        let batched = sweep(&trace, configs.clone());
        for (config, batched) in configs.into_iter().zip(&batched) {
            let serial = Simulator::new(config).run(trace.replay());
            assert_eq!(&serial, batched, "mixed-predictor batch must still be bit-identical");
            assert!(!batched.deadlocked);
        }
    }
}
