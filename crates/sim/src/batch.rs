//! Batched design-space sweeps: N machine configurations in one pass over
//! a shared captured trace.
//!
//! A sweep re-times the *same* dynamic instruction stream across many
//! machine configurations. Running the sweep points serially
//! (`Simulator::run` per config) re-streams the trace once per point and
//! re-derives, N times over, every front-end product that is a pure
//! function of the trace. [`SweepRunner`] instead co-schedules N resumable
//! [`SimSession`]s round-robin over **one** captured trace, sharing the
//! trace-pure state across all members:
//!
//! * the trace buffers themselves — each member reads through its own
//!   [`TraceCursor`], so the dynamic records exist once in memory and the
//!   co-scheduler keeps every cursor inside the same small, cache-hot
//!   region of the trace;
//! * one immutable [`StaticDecodeTable`] instead of N private decode
//!   memos;
//! * one [`BranchOracle`] instead of N identical branch predictors: the
//!   predictor is driven *at fetch in trace order* — `predict`/`update`
//!   for conditional branches, RAS push/pop for calls/returns — so its
//!   entire evolution is independent of issue width, register count, cache
//!   geometry and DVI scheme. The oracle runs one live predictor over the
//!   trace and records the per-branch/per-return misprediction bitstream;
//!   every sweep member then replays the bits instead of carrying (and
//!   thrashing) its own ~100KB of predictor tables. The oracle is shared
//!   only when every member uses the same [`PredictorConfig`]; otherwise
//!   members silently fall back to private live predictors.
//! * one [`IcacheOracle`] instead of N identical L1 instruction caches:
//!   the L1I is likewise touched only at fetch in trace order, so its
//!   hit/miss outcomes are trace-pure per geometry. Only the unified-L2
//!   interaction of each L1I miss — which *is* entangled with the
//!   member's own config-dependent data accesses — stays on the member's
//!   private hierarchy ([`dvi_mem::MemoryHierarchy::inst_fetch_known`]).
//!   Shared only when every member uses the same L1I geometry.
//! * one [`dvi_program::DepGraph`] instead of N alias-table walks: the
//!   dynamic def-use structure of the trace is machine-independent, so
//!   dispatch wires each window entry directly to its producers' window
//!   sequence numbers and the rename table drops out of the dependence
//!   path entirely (it still owns free-list occupancy and reclaim timing,
//!   which *are* machine state).
//! * one [`DviOracle`] per distinct DVI configuration instead of N live
//!   LVM / LVM-Stack instances: decode-stage DVI is in-order and
//!   trace-pure given a [`dvi_core::DviConfig`], so the
//!   reclaim/elimination event stream is recorded once per distinct
//!   configuration on the grid and shared by every member that agrees on
//!   it (fig05/fig06 vary the DVI axis; members in undersized groups fall
//!   back to live engines).
//! * optionally ([`SweepRunner::with_dcache_oracle`]) one
//!   [`dvi_mem::DcacheOracle`] per qualifying data-side geometry group
//!   ([`SweepRunner::dmem_geometry_groups`]): the group leader's L1D
//!   outcome stream is recorded once and replayed by every member of the
//!   group in place of a private L1D tag array. Unlike every product
//!   above, the D-cache access stream is **issue-order dependent** — a
//!   member whose configuration perturbs issue order (register pressure,
//!   width, ports, DVI elimination) may produce a different stream — so
//!   the replay cursor checks every access against the recording and a
//!   diverging member degrades to live simulation
//!   ([`MemberOutcome::Degraded`], bit-identical statistics) instead of
//!   ever replaying wrong outcomes. How often members actually share
//!   their group leader's stream is an empirical per-grid question;
//!   [`SweepRunner::measure_dcache_qualification`] measures it.
//!
//! # Equivalence
//!
//! Per-member [`SimStats`] are **bit-identical** to serial
//! `Simulator::run(trace.replay())` calls: sessions share no mutable
//! state, the decode table holds exactly what each memo would compute, and
//! the oracle bitstream reproduces each live predictor decision (locked by
//! `tests/batch_equiv.rs` across random presets × machine grids).
//!
//! # Parallelism
//!
//! Because members share nothing mutable — every shared product is an
//! [`Arc`] of immutable, `Sync` data (compile-time-asserted below) — a
//! sweep also runs *across threads*: [`SweepRunner::run_parallel`]
//! distributes the members over the host's cores, each running to
//! completion privately, with statistics bit-identical to the serial
//! runner at any thread count (`tests/parallel_equiv.rs`).
//!
//! # Fault isolation
//!
//! A sweep is only as useful as its worst member: one wedged or panicking
//! configuration must not take down the statistics of its siblings. Every
//! member therefore runs inside a panic boundary and reports a
//! [`MemberOutcome`] instead of bare statistics
//! ([`SweepRunner::run_outcomes`] and the parallel variants):
//!
//! * a panic in one member (a modelling bug, a poisoned shared product, an
//!   injected test fault) is caught, the member is **retried once from
//!   record 0 on private live structures** — dropping every shared oracle,
//!   which is always safe because the oracles are a host-time optimization
//!   with bit-identical statistics — and reported as
//!   [`MemberOutcome::Degraded`] on success or [`MemberOutcome::Panicked`]
//!   if the retry dies too;
//! * a watchdog abort surfaces as [`MemberOutcome::Deadlocked`] carrying
//!   the partial statistics and the structured
//!   [`crate::stats::DeadlockReport`];
//! * pre-recorded oracle bundles loaded from disk
//!   ([`SweepRunner::with_recorded_oracles`]) are integrity-checked
//!   against the trace fingerprint before any member consumes them; on
//!   mismatch the sweep degrades to live per-member simulation instead of
//!   replaying a stream recorded from some other trace.
//!
//! The compatibility entry points ([`SweepRunner::run`] and friends) keep
//! their `Vec<SimStats>` signature by folding outcomes back: degraded
//! members contribute their (bit-identical) fallback statistics, deadlocks
//! contribute flagged partial statistics, and only a double failure —
//! panic plus failed retry — re-raises the panic.
//!
//! # Checkpoint/resume
//!
//! Long sweeps can persist their progress: [`SweepRunner::with_checkpoint`]
//! snapshots completed-member outcomes and in-progress trace positions to a
//! checksummed artifact after every scheduling turn (atomic
//! write-then-rename, so a kill mid-write leaves the previous snapshot
//! intact), and [`SweepRunner::resume`] reconstructs the run from the
//! snapshot. Completed members are restored verbatim; interrupted members
//! are re-run from record 0, which is **bit-identical** to the
//! uninterrupted run because member statistics are a pure function of
//! (configuration, trace, shared products) — the same determinism contract
//! the parallel runner rests on (locked by `tests/fault_tolerance.rs`,
//! which kills sweeps at every turn boundary and resumes them).

use crate::checkpoint::{
    config_fingerprint, MemberCheckpoint, MemberCheckpointState, SweepCheckpoint,
};
use crate::config::{DcacheModelKind, DmemGeometry, SchedulerKind, SimConfig};
use crate::dvi_engine::{DviEngine, ReclaimList};
use crate::frontend::{FetchPredictor, StaticDecodeTable};
use crate::rename::RenameState;
use crate::session::SimSession;
use crate::stats::SimStats;
use dvi_bpred::{PredictorConfig, PredictorStats};
use dvi_core::{DviConfig, DviStats};
use dvi_isa::{Abi, Instr, RegMask, NUM_ARCH_REGS};
use dvi_mem::{
    AccessKind, Cache, CacheConfig, CacheStats, DcacheFingerprinter, DcacheOracle, DcacheRecorder,
    PackedBits,
};
use dvi_program::artifact::{ArtifactReader, ArtifactWriter, ByteReader, ByteWriter};
use dvi_program::{
    ArtifactError, CapturedTrace, DepGraph, FusionTable, LayoutProgram, TraceCursor,
};
use rayon::prelude::*;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Compile-time proof that one copy of every sweep-shared product can be
/// read concurrently from many member threads: the parallel runner hands
/// `Arc`s of these across [`std::thread::scope`] / rayon workers, so a
/// non-`Sync` field sneaking into any of them must fail the build here,
/// not a customer's sweep.
const _: () = {
    const fn shared_across_member_threads<T: Send + Sync>() {}
    shared_across_member_threads::<CapturedTrace>();
    shared_across_member_threads::<StaticDecodeTable>();
    shared_across_member_threads::<BranchOracle>();
    shared_across_member_threads::<IcacheOracle>();
    shared_across_member_threads::<DviOracle>();
    shared_across_member_threads::<DcacheOracle>();
    shared_across_member_threads::<DepGraph>();
    shared_across_member_threads::<FusionTable>();
    shared_across_member_threads::<SharedTables>();
};

/// A packed bitstream with sequential append and random read.
#[derive(Debug, Default, Clone)]
struct BitStream {
    words: Vec<u64>,
    len: usize,
}

impl BitStream {
    fn push(&mut self, bit: bool) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        if bit {
            *self.words.last_mut().expect("just pushed") |= 1 << (self.len % 64);
        }
        self.len += 1;
    }

    #[inline]
    fn get(&self, idx: usize) -> bool {
        (self.words[idx >> 6] >> (idx & 63)) & 1 == 1
    }

    /// Appends the stream to an artifact payload (bit length, then the
    /// packed words).
    fn write(&self, w: &mut ByteWriter) {
        w.put_u64(self.len as u64);
        w.put_u64(self.words.len() as u64);
        for &word in &self.words {
            w.put_u64(word);
        }
    }

    /// Reads a stream written by [`BitStream::write`], validating that the
    /// word count matches the bit length.
    fn read(r: &mut ByteReader<'_>) -> Result<BitStream, ArtifactError> {
        let len = usize::try_from(r.u64()?)
            .map_err(|_| ArtifactError::Malformed { context: "bitstream length".into() })?;
        let words_len = r.count()?;
        if words_len != len.div_ceil(64) {
            return Err(ArtifactError::Malformed { context: "bitstream word count".into() });
        }
        let mut words = Vec::with_capacity(words_len);
        for _ in 0..words_len {
            words.push(r.u64()?);
        }
        Ok(BitStream { words, len })
    }
}

/// A pre-recorded branch-prediction bitstream for one captured trace.
///
/// One bit per conditional branch or return in the trace, in trace order:
/// whether that control transfer mispredicted under `predictor`. The
/// recording drives a live [`dvi_bpred::CombiningPredictor`] through
/// exactly the event sequence the fetch stage produces (same byte
/// addresses, same RAS pushes), so replaying the bits through an
/// [`OracleCursor`] is indistinguishable from fetching with a private
/// predictor.
#[derive(Debug, Clone)]
pub struct BranchOracle {
    /// Packed misprediction bits, one per branch/return record.
    bits: BitStream,
    /// The predictor configuration the bits were recorded under.
    predictor: PredictorConfig,
    /// Full-trace statistics of the recording predictor (what a live
    /// predictor reports after consuming the whole trace).
    totals: PredictorStats,
}

impl BranchOracle {
    /// Runs a live predictor over the whole trace and records the
    /// misprediction bitstream.
    ///
    /// The `match` below mirrors the fetch stage's predictor interaction
    /// record-for-record (see `FrontEnd::fetch`); `tests/batch_equiv.rs`
    /// locks the two together.
    #[must_use]
    pub fn record(trace: &CapturedTrace, predictor: PredictorConfig) -> BranchOracle {
        let mut live = FetchPredictor::live(predictor);
        let mut oracle = BranchOracle {
            bits: BitStream::default(),
            predictor,
            totals: PredictorStats::default(),
        };
        for d in trace.cursor() {
            match d.instr {
                Instr::Branch { .. } => {
                    let mispredicted = live.branch(d.byte_addr(), d.taken.unwrap_or(false));
                    oracle.bits.push(mispredicted);
                }
                Instr::Call { .. } => {
                    live.call(LayoutProgram::byte_addr(d.pc + 1));
                }
                Instr::Return => {
                    let mispredicted = live.ret(LayoutProgram::byte_addr(d.next_pc));
                    oracle.bits.push(mispredicted);
                }
                _ => {}
            }
        }
        oracle.totals = live.stats();
        oracle
    }

    /// Number of recorded prediction events (branches + returns).
    #[must_use]
    pub fn len(&self) -> usize {
        self.bits.len
    }

    /// Whether the trace contained no predicted control transfers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bits.len == 0
    }

    /// The predictor configuration the bitstream was recorded under.
    #[must_use]
    pub fn predictor(&self) -> PredictorConfig {
        self.predictor
    }

    /// Statistics of the recording predictor over the full trace.
    #[must_use]
    pub fn totals(&self) -> PredictorStats {
        self.totals
    }
}

/// A consuming read position into a shared [`BranchOracle`].
///
/// The cursor advances one bit per branch/return fetched and accumulates
/// [`PredictorStats`] as it goes, so a session's predictor statistics are
/// exact at every intermediate position — not just after the full trace.
#[derive(Debug, Clone)]
pub struct OracleCursor {
    oracle: Arc<BranchOracle>,
    idx: usize,
    stats: PredictorStats,
}

impl OracleCursor {
    /// A cursor positioned at the first prediction event.
    #[must_use]
    pub fn new(oracle: Arc<BranchOracle>) -> OracleCursor {
        OracleCursor { oracle, idx: 0, stats: PredictorStats::default() }
    }

    #[inline]
    fn next_bit(&mut self) -> bool {
        assert!(
            self.idx < self.oracle.bits.len,
            "branch oracle exhausted: the session is fetching a different trace \
             than the oracle was recorded from"
        );
        let bit = self.oracle.bits.get(self.idx);
        self.idx += 1;
        bit
    }

    /// Consumes the bit of the next conditional branch; returns whether it
    /// mispredicted.
    #[inline]
    pub(crate) fn branch(&mut self) -> bool {
        self.stats.direction_predictions += 1;
        let mispredicted = self.next_bit();
        if mispredicted {
            self.stats.direction_mispredictions += 1;
        }
        mispredicted
    }

    /// Consumes the bit of the next return; returns whether it
    /// mispredicted.
    #[inline]
    pub(crate) fn ret(&mut self) -> bool {
        self.stats.return_predictions += 1;
        let mispredicted = self.next_bit();
        if mispredicted {
            self.stats.return_mispredictions += 1;
        }
        mispredicted
    }

    /// Statistics over the events consumed so far.
    #[must_use]
    pub(crate) fn stats(&self) -> PredictorStats {
        self.stats
    }
}

/// A pre-recorded L1 instruction-cache outcome bitstream for one captured
/// trace.
///
/// The fetch stage touches the L1I in trace order — one access per cache
/// line entered, plus a next-line prefetch — and nothing else touches it,
/// so for a given L1I geometry the hit/miss outcome of every access is a
/// pure function of the trace. The oracle replays the fetch stage's exact
/// line-change logic over a standalone L1I model once and records the
/// outcome bits; sweep members then bypass their private L1I tag arrays
/// entirely ([`dvi_mem::MemoryHierarchy::inst_fetch_known`]) while still
/// performing each *miss*'s unified-L2 interaction — the part that is
/// entangled with their own, config-dependent data accesses — on their own
/// hierarchy.
#[derive(Debug, Clone)]
pub struct IcacheOracle {
    /// Packed hit bits, one per L1I access event in trace order.
    bits: BitStream,
    /// The L1I geometry the bits were recorded under.
    geometry: CacheConfig,
    /// Full-trace statistics of the recording cache.
    totals: CacheStats,
}

impl IcacheOracle {
    /// Replays the fetch stage's I-cache interaction over the whole trace
    /// and records the per-access hit bits.
    ///
    /// The line-change logic below mirrors `FrontEnd::fetch`
    /// access-for-access (one lookup per line entered plus a next-line
    /// prefetch); `tests/batch_equiv.rs` locks the two together.
    #[must_use]
    pub fn record(trace: &CapturedTrace, geometry: CacheConfig) -> IcacheOracle {
        let mut l1i = Cache::new(geometry);
        let line_shift = geometry.line_bytes.trailing_zeros();
        let mut last_line = None;
        let mut bits = BitStream::default();
        for d in trace.cursor() {
            let byte_addr = d.byte_addr();
            let line = byte_addr >> line_shift;
            if last_line != Some(line) {
                last_line = Some(line);
                bits.push(l1i.access(byte_addr, AccessKind::Read).hit);
                bits.push(l1i.access((line + 1) << line_shift, AccessKind::Read).hit);
            }
        }
        IcacheOracle { bits, geometry, totals: l1i.stats() }
    }

    /// Number of recorded L1I access events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bits.len
    }

    /// Whether the trace produced no instruction fetch accesses.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bits.len == 0
    }

    /// The L1I geometry the bitstream was recorded under.
    #[must_use]
    pub fn geometry(&self) -> CacheConfig {
        self.geometry
    }

    /// Statistics of the recording cache over the full trace.
    #[must_use]
    pub fn totals(&self) -> CacheStats {
        self.totals
    }
}

/// A consuming read position into a shared [`IcacheOracle`], accumulating
/// exact L1I [`CacheStats`] as it goes (these replace the bypassed private
/// cache's counters in the member's final [`SimStats`]).
#[derive(Debug, Clone)]
pub struct IcacheCursor {
    oracle: Arc<IcacheOracle>,
    idx: usize,
    stats: CacheStats,
}

impl IcacheCursor {
    /// A cursor positioned at the first access event.
    #[must_use]
    pub fn new(oracle: Arc<IcacheOracle>) -> IcacheCursor {
        IcacheCursor { oracle, idx: 0, stats: CacheStats::default() }
    }

    /// Consumes the next access event; returns whether it hit in the L1I.
    #[inline]
    pub(crate) fn next_hit(&mut self) -> bool {
        assert!(
            self.idx < self.oracle.bits.len,
            "I-cache oracle exhausted: the session is fetching a different trace \
             than the oracle was recorded from"
        );
        let hit = self.oracle.bits.get(self.idx);
        self.idx += 1;
        self.stats.accesses += 1;
        if !hit {
            self.stats.misses += 1;
        }
        hit
    }

    /// Statistics over the events consumed so far.
    #[must_use]
    pub(crate) fn stats(&self) -> CacheStats {
        self.stats
    }
}

/// A pre-recorded decode-stage DVI event stream for one captured trace and
/// one [`DviConfig`].
///
/// Decode-stage DVI is driven strictly in trace order at dispatch — kills,
/// calls, returns, save/restore elimination checks and destination renames
/// — and every decision it makes (which saves/restores are eliminated,
/// which architectural registers lose their mapping at which event) is a
/// pure function of the trace and the DVI configuration: machine width,
/// register-file size and cache geometry never enter. A sweep therefore
/// records the stream **once per distinct [`DviConfig`] on the grid** by
/// running one live [`DviEngine`] (plus a shadow mapped-bit tracker
/// standing in for the alias table) over the trace, and every member that
/// agrees on the DVI configuration replays the recorded decisions through
/// a [`DviCursor`] instead of carrying its own LVM / LVM-Stack machinery.
///
/// Replay is indistinguishable from the live engine: elimination decisions,
/// unmap order (and therefore free-list order and every downstream
/// allocation) and [`DviStats`] are bit-identical, locked by
/// `tests/batch_equiv.rs` and `tests/depgraph_equiv.rs`.
#[derive(Debug, Clone)]
pub struct DviOracle {
    /// The DVI configuration the stream was recorded under.
    config: DviConfig,
    /// One bit per `live-store`/`live-load` record in trace order: whether
    /// the decode stage eliminates it.
    elim: BitStream,
    /// One mask per `kill`/`call`/`return` record in trace order: the
    /// architectural registers whose mappings the event removes.
    unmaps: Vec<RegMask>,
    /// Size of the ABI's I-DVI mask (for exact `idvi_regs_killed`
    /// accounting during replay).
    idvi_mask_len: u64,
}

impl DviOracle {
    /// Runs the decode-stage DVI machinery over the whole trace and
    /// records the elimination bits and unmap masks.
    ///
    /// The `match` below mirrors `FrontEnd::next_dispatch` event for event
    /// — elimination guards before dispatch, destination renames before
    /// call events — so the recorded stream cannot diverge from what a
    /// live engine would decide at dispatch time.
    #[must_use]
    pub fn record(trace: &CapturedTrace, config: DviConfig) -> DviOracle {
        let abi = Abi::mips_like();
        let mut oracle = DviOracle {
            config,
            elim: BitStream::default(),
            unmaps: Vec::new(),
            idvi_mask_len: abi.idvi_mask().len() as u64,
        };
        let mut engine = DviEngine::new(config, abi);
        // Shadow alias-table occupancy: at reset every architectural
        // register is mapped. Only mapped-ness matters to the recorded
        // decisions; the physical names differ per member and stay theirs.
        let mut mapped = [true; NUM_ARCH_REGS];
        // The shadow unmap action: clear the mapped bit and collect the
        // register into the event's recorded mask.
        fn shadow<'a>(
            mapped: &'a mut [bool; NUM_ARCH_REGS],
            out: &'a mut RegMask,
        ) -> impl FnMut(dvi_isa::ArchReg) -> bool + 'a {
            move |reg| {
                let slot = &mut mapped[reg.index()];
                let was_mapped = *slot;
                if was_mapped {
                    *slot = false;
                    out.insert(reg);
                }
                was_mapped
            }
        }
        for d in trace.cursor() {
            match d.instr {
                Instr::Kill { mask } => {
                    let mut unmapped = RegMask::empty();
                    engine.on_kill(mask, shadow(&mut mapped, &mut unmapped));
                    oracle.unmaps.push(unmapped);
                }
                Instr::LiveStore { rs, .. } => oracle.elim.push(engine.on_save(rs)),
                Instr::LiveLoad { rd, .. } => {
                    let eliminated = engine.on_restore(rd);
                    oracle.elim.push(eliminated);
                    if !eliminated {
                        // The restore dispatches: destination renaming
                        // re-maps the register and marks it live.
                        mapped[rd.index()] = true;
                        engine.on_dest_rename(rd);
                    }
                }
                Instr::Call { .. } => {
                    // Dispatch renames the destination (the return-address
                    // register) before the decode-stage call event.
                    if let Some(rd) = d.instr.dst_reg() {
                        mapped[rd.index()] = true;
                        engine.on_dest_rename(rd);
                    }
                    let mut unmapped = RegMask::empty();
                    engine.on_call(shadow(&mut mapped, &mut unmapped));
                    oracle.unmaps.push(unmapped);
                }
                Instr::Return => {
                    let mut unmapped = RegMask::empty();
                    engine.on_return(shadow(&mut mapped, &mut unmapped));
                    oracle.unmaps.push(unmapped);
                }
                _ => {
                    if let Some(rd) = d.instr.dst_reg() {
                        mapped[rd.index()] = true;
                        engine.on_dest_rename(rd);
                    }
                }
            }
        }
        oracle
    }

    /// The DVI configuration the stream was recorded under.
    #[must_use]
    pub fn config(&self) -> DviConfig {
        self.config
    }

    /// Number of recorded elimination decisions (saves + restores).
    #[must_use]
    pub fn len(&self) -> usize {
        self.elim.len
    }

    /// Whether the trace contained no saves or restores.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.elim.len == 0
    }

    /// Number of recorded unmap events (kills + calls + returns).
    #[must_use]
    pub fn unmap_events(&self) -> usize {
        self.unmaps.len()
    }

    /// The recorded elimination decision of the `idx`-th save/restore in
    /// trace order (differential-test inspection).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn eliminated(&self, idx: usize) -> bool {
        assert!(idx < self.elim.len, "elimination index out of range");
        self.elim.get(idx)
    }

    /// The recorded unmap mask of the `event`-th kill/call/return in trace
    /// order (differential-test inspection).
    ///
    /// # Panics
    ///
    /// Panics if `event` is out of range.
    #[must_use]
    pub fn unmap_mask(&self, event: usize) -> RegMask {
        self.unmaps[event]
    }
}

/// A consuming read position into a shared [`DviOracle`], accumulating
/// exact [`DviStats`] as it goes (these replace the bypassed live engine's
/// counters in the member's final statistics).
#[derive(Debug, Clone)]
pub struct DviCursor {
    oracle: Arc<DviOracle>,
    /// Next elimination bit (saves/restores, trace order).
    elim_idx: usize,
    /// Next unmap mask (kills/calls/returns, trace order).
    unmap_idx: usize,
    stats: DviStats,
}

impl DviCursor {
    /// A cursor positioned at the first event.
    #[must_use]
    pub fn new(oracle: Arc<DviOracle>) -> DviCursor {
        DviCursor { oracle, elim_idx: 0, unmap_idx: 0, stats: DviStats::new() }
    }

    /// Applies the next unmap event to the member's own alias table,
    /// queueing the released physical registers (the member still owes the
    /// reclaim *timing*: the registers ride the next dispatched window
    /// entry to commit, exactly as with a live engine).
    fn apply_unmaps(&mut self, rename: &mut RenameState, out: &mut ReclaimList) {
        assert!(
            self.unmap_idx < self.oracle.unmaps.len(),
            "DVI oracle exhausted: the session is dispatching a different trace \
             than the oracle was recorded from"
        );
        let mask = self.oracle.unmaps[self.unmap_idx];
        self.unmap_idx += 1;
        for reg in mask.iter() {
            let p = rename
                .unmap(reg)
                .expect("DVI oracle unmapped a register the member has no mapping for");
            out.push(p);
        }
        self.stats.phys_regs_reclaimed_early += mask.len() as u64;
    }

    /// The next elimination bit without consuming it (a stalled dispatch
    /// re-attempts the same save/restore).
    fn peek_elim(&self) -> bool {
        assert!(
            self.elim_idx < self.oracle.elim.len,
            "DVI oracle exhausted: the session is dispatching a different trace \
             than the oracle was recorded from"
        );
        self.oracle.elim.get(self.elim_idx)
    }

    /// An explicit `kill` consumed at decode (`mask` is the static kill
    /// mask, for exact E-DVI accounting).
    pub(crate) fn on_kill(
        &mut self,
        mask: RegMask,
        rename: &mut RenameState,
        out: &mut ReclaimList,
    ) {
        if self.oracle.config.use_edvi {
            self.stats.edvi_instructions += 1;
            self.stats.edvi_regs_killed += mask.len() as u64;
        }
        self.apply_unmaps(rename, out);
    }

    /// A dispatch attempt on a save. Counts the attempt (a save stalled
    /// behind a full window is re-attempted and re-counted, exactly like
    /// the live engine) and consumes the bit only when it eliminates.
    pub(crate) fn on_save_attempt(&mut self) -> bool {
        self.stats.saves_seen += 1;
        let eliminated = self.peek_elim();
        if eliminated {
            self.stats.saves_eliminated += 1;
            self.elim_idx += 1;
        }
        eliminated
    }

    /// A dispatch attempt on a restore (see [`DviCursor::on_save_attempt`]).
    pub(crate) fn on_restore_attempt(&mut self) -> bool {
        self.stats.restores_seen += 1;
        let eliminated = self.peek_elim();
        if eliminated {
            self.stats.restores_eliminated += 1;
            self.elim_idx += 1;
        }
        eliminated
    }

    /// A non-eliminated save/restore entered the window: its (false)
    /// elimination bit is consumed.
    pub(crate) fn on_save_restore_dispatched(&mut self) {
        self.elim_idx += 1;
    }

    /// A procedure call dispatched.
    pub(crate) fn on_call(&mut self, rename: &mut RenameState, out: &mut ReclaimList) {
        if self.oracle.config.use_idvi {
            self.stats.idvi_regs_killed += self.oracle.idvi_mask_len;
        }
        self.apply_unmaps(rename, out);
    }

    /// A procedure return dispatched.
    pub(crate) fn on_return(&mut self, rename: &mut RenameState, out: &mut ReclaimList) {
        if self.oracle.config.use_idvi {
            self.stats.idvi_regs_killed += self.oracle.idvi_mask_len;
        }
        self.apply_unmaps(rename, out);
    }

    /// Statistics over the events consumed so far.
    #[must_use]
    pub(crate) fn stats(&self) -> DviStats {
        self.stats
    }
}

/// The bundle of sweep-shared, immutable trace-pure products a
/// [`SimSession`] can consume in place of its private state. Every field
/// is optional and independently shareable; all of them leave the modelled
/// machine bit-identical (`tests/batch_equiv.rs`).
#[derive(Debug, Clone, Default)]
pub struct SharedTables {
    /// Precomputed per-PC decode records (replaces the private
    /// [`crate::DecodeMemo`]).
    pub decode: Option<Arc<StaticDecodeTable>>,
    /// Pre-recorded branch/return misprediction bits (replaces the private
    /// live predictor; must match the member's predictor configuration).
    pub branches: Option<Arc<BranchOracle>>,
    /// Pre-recorded L1I hit bits (bypasses the private L1I tag array; must
    /// match the member's L1I geometry).
    pub icache: Option<Arc<IcacheOracle>>,
    /// The trace's precomputed dependence graph
    /// ([`dvi_program::DepGraph`]): dispatch wires window entries directly
    /// to their producers' window sequence numbers instead of renaming
    /// sources through the alias table (event-driven scheduler only).
    pub depgraph: Option<Arc<DepGraph>>,
    /// Pre-recorded decode-stage DVI event stream (replaces the private
    /// live [`DviEngine`]; must match the member's [`DviConfig`]).
    pub dvi: Option<Arc<DviOracle>>,
    /// Pre-recorded L1D outcome stream of the member's data-side geometry
    /// group (replaces the private L1D tag array). Valid only while the
    /// member reproduces the recording member's exact access stream — the
    /// replay cursor checks every access and panics on divergence, which
    /// the member panic boundary turns into a degraded live retry instead
    /// of wrong statistics.
    pub dcache: Option<Arc<DcacheOracle>>,
    /// Precomputed dispatch-group fusion table
    /// ([`dvi_program::FusionTable`]) for the member's decode width:
    /// dispatch consumes whole fetch groups via table lookups (bulk window
    /// push, batched free-list allocation, precomputed wakeup wiring) and
    /// falls back to the cycle loop at structural-hazard and oracle-event
    /// boundaries. Requires the dependence graph; ignored by members whose
    /// width or scheduler does not match. Bit-identity with unfused
    /// dispatch is locked by `tests/fusion_equiv.rs`.
    pub fusion: Option<Arc<FusionTable>>,
}

/// How one sweep member ended: the per-member unit of fault isolation.
///
/// Every run entry point that returns outcomes
/// ([`SweepRunner::run_outcomes`], [`SweepRunner::run_parallel_outcomes`],
/// [`SweepRunner::run_parallel_threads_outcomes`]) reports one of these per
/// configuration, in grid order, so one failing member cannot take down
/// its siblings' statistics.
#[derive(Debug, Clone, PartialEq)]
pub enum MemberOutcome {
    /// The member ran to completion on the first attempt.
    Ok(SimStats),
    /// The first attempt panicked (or a shared-product integrity check
    /// failed before it started) and the member was re-run from record 0
    /// on private live structures. The fallback statistics are
    /// bit-identical to what a healthy shared-product run would have
    /// produced — sharing is a host-time optimization only — so `stats`
    /// is fully trustworthy; `reason` says why the fallback was needed.
    Degraded {
        /// Statistics of the successful live re-run.
        stats: SimStats,
        /// The panic payload or integrity-check failure of the first
        /// attempt.
        reason: String,
    },
    /// The forward-progress watchdog aborted the member; `partial`
    /// describes the truncated run (its [`SimStats::deadlocked`] flag is
    /// set and [`SimStats::deadlock`] carries the same report).
    Deadlocked {
        /// Statistics up to the abort — a partial run, not a result.
        partial: SimStats,
        /// The watchdog's structured diagnosis.
        report: crate::stats::DeadlockReport,
    },
    /// Both the primary attempt and the degraded retry panicked; no
    /// statistics exist for this member.
    Panicked {
        /// The panic payload of the final attempt.
        payload: String,
    },
}

impl MemberOutcome {
    /// The member's statistics, when any exist. `Ok` and `Degraded`
    /// statistics are complete and bit-identical to a healthy run;
    /// `Deadlocked` statistics are partial (flagged via
    /// [`SimStats::deadlocked`]); `Panicked` members have none.
    #[must_use]
    pub fn stats(&self) -> Option<&SimStats> {
        match self {
            MemberOutcome::Ok(stats) | MemberOutcome::Degraded { stats, .. } => Some(stats),
            MemberOutcome::Deadlocked { partial, .. } => Some(partial),
            MemberOutcome::Panicked { .. } => None,
        }
    }

    /// Whether the member produced complete, trustworthy statistics
    /// (`Ok` or `Degraded`).
    #[must_use]
    pub fn is_complete(&self) -> bool {
        matches!(self, MemberOutcome::Ok(_) | MemberOutcome::Degraded { .. })
    }

    /// Folds the outcome back to the legacy `Vec<SimStats>` contract:
    /// complete statistics pass through, deadlocked members contribute
    /// their flagged partial statistics (exactly what the pre-outcome
    /// runner returned), and a double failure re-raises the panic it
    /// caught.
    ///
    /// # Panics
    ///
    /// Panics (re-raising the member's own failure) on
    /// [`MemberOutcome::Panicked`].
    #[must_use]
    pub fn into_stats(self) -> SimStats {
        match self {
            MemberOutcome::Ok(stats) | MemberOutcome::Degraded { stats, .. } => stats,
            MemberOutcome::Deadlocked { partial, .. } => partial,
            MemberOutcome::Panicked { payload } => {
                panic!("sweep member failed twice (shared-product run and live retry): {payload}")
            }
        }
    }
}

impl fmt::Display for MemberOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemberOutcome::Ok(stats) => write!(f, "ok: {stats}"),
            MemberOutcome::Degraded { stats, reason } => {
                write!(f, "degraded to live simulation ({reason}): {stats}")
            }
            MemberOutcome::Deadlocked { report, .. } => write!(f, "deadlocked: {report}"),
            MemberOutcome::Panicked { payload } => write!(f, "failed: {payload}"),
        }
    }
}

/// Per-sweep health roll-up of [`MemberOutcome`]s — what a figure table
/// prints alongside its numbers so a degraded or deadlocked member is
/// visible in the output instead of silently averaged in.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepSummary {
    /// Members that completed on the first attempt.
    pub ok: usize,
    /// Members that completed on the live-fallback retry.
    pub degraded: usize,
    /// Members aborted by the forward-progress watchdog.
    pub deadlocked: usize,
    /// Members that failed both attempts (no statistics).
    pub failed: usize,
}

impl SweepSummary {
    /// Tallies a slice of outcomes.
    #[must_use]
    pub fn of(outcomes: &[MemberOutcome]) -> SweepSummary {
        let mut summary = SweepSummary::default();
        for outcome in outcomes {
            match outcome {
                MemberOutcome::Ok(_) => summary.ok += 1,
                MemberOutcome::Degraded { .. } => summary.degraded += 1,
                MemberOutcome::Deadlocked { .. } => summary.deadlocked += 1,
                MemberOutcome::Panicked { .. } => summary.failed += 1,
            }
        }
        summary
    }

    /// Folds another summary in (figures aggregate across benchmarks).
    pub fn merge(&mut self, other: SweepSummary) {
        self.ok += other.ok;
        self.degraded += other.degraded;
        self.deadlocked += other.deadlocked;
        self.failed += other.failed;
    }

    /// Whether every member completed on the first attempt.
    #[must_use]
    pub fn all_ok(&self) -> bool {
        self.degraded == 0 && self.deadlocked == 0 && self.failed == 0
    }

    /// Total members tallied.
    #[must_use]
    pub fn total(&self) -> usize {
        self.ok + self.degraded + self.deadlocked + self.failed
    }
}

impl fmt::Display for SweepSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} members: {} ok", self.total(), self.ok)?;
        if self.degraded > 0 {
            write!(f, ", {} degraded to live simulation", self.degraded)?;
        }
        if self.deadlocked > 0 {
            write!(f, ", {} deadlocked", self.deadlocked)?;
        }
        if self.failed > 0 {
            write!(f, ", {} failed", self.failed)?;
        }
        Ok(())
    }
}

/// A test-only injected fault: panic a chosen member once it has fetched
/// `after_records` records. Cloned into parallel jobs; the `fired` flag is
/// shared so a one-shot fault stays one-shot across the degraded retry.
#[derive(Debug, Clone)]
pub(crate) struct FaultSpec {
    member: usize,
    after_records: u64,
    sticky: bool,
    fired: Arc<AtomicBool>,
}

/// Fires an injected fault when the member has crossed its threshold.
/// One-shot faults fire on the first crossing only (the degraded retry
/// then completes); sticky faults fire on every crossing (the retry dies
/// too, exercising [`MemberOutcome::Panicked`]).
fn trip_fault(fault: Option<&FaultSpec>, fetched: u64) {
    if let Some(f) = fault {
        if fetched >= f.after_records && (f.sticky || !f.fired.swap(true, Ordering::Relaxed)) {
            panic!("injected fault: member {} at record {}", f.member, fetched);
        }
    }
}

/// Renders a caught panic payload for [`MemberOutcome`] reporting.
fn panic_payload(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(payload) => match payload.downcast::<&'static str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "non-string panic payload".to_string(),
        },
    }
}

/// Classifies a finished member's statistics into its outcome.
fn classify(stats: SimStats, degraded: Option<String>) -> MemberOutcome {
    if let Some(report) = stats.deadlock {
        MemberOutcome::Deadlocked { partial: stats, report }
    } else if let Some(reason) = degraded {
        MemberOutcome::Degraded { stats, reason }
    } else {
        MemberOutcome::Ok(stats)
    }
}

/// Artifact container identity of a [`RecordedOracles`] bundle.
pub const ORACLES_MAGIC: [u8; 8] = *b"DVIORCL1";
/// Current [`RecordedOracles`] artifact version. Bump on any layout
/// change; old readers reject newer files with
/// [`ArtifactError::VersionSkew`] instead of misparsing them.
/// Version 2 added the D-cache oracle sections (and their count in META).
/// Version 3 added the dispatch-group fusion-table sections (and their
/// count in META); version-2 bundles still load, with no fusion tables.
pub const ORACLES_VERSION: u32 = 3;

/// Section tags inside a [`RecordedOracles`] artifact.
pub mod oracle_section {
    /// Trace fingerprint + presence flags.
    pub const META: u32 = 1;
    /// The branch oracle (predictor config, totals, bitstream).
    pub const BRANCHES: u32 = 2;
    /// The I-cache oracle (geometry, totals, bitstream).
    pub const ICACHE: u32 = 3;
    /// One section per recorded DVI event stream.
    pub const DVI: u32 = 4;
    /// One section per recorded D-cache outcome stream (geometry group
    /// key + full access/outcome streams).
    pub const DCACHE: u32 = 5;
    /// One section per dispatch-group fusion table (one per decode
    /// width; the table serializes its own width).
    pub const FUSION: u32 = 6;
}

/// A durable bundle of recorded sweep oracles, keyed to the captured
/// trace they were recorded from.
///
/// Recording the branch/I-cache/DVI oracles costs a full pass over the
/// trace each ([`BranchOracle::record`] and friends); a sweep service that
/// re-times the same capture across many invocations can record them once,
/// [`RecordedOracles::save`] them next to the trace artifact, and hand
/// them to later sweeps via [`SweepRunner::with_recorded_oracles`].
///
/// The bundle stores the [`CapturedTrace::fingerprint`] of the recording
/// trace. Loading rejects a bundle whose fingerprint does not match the
/// expected one ([`ArtifactError::FingerprintMismatch`]), and the sweep
/// runner re-checks at run time — a stale bundle degrades the sweep to
/// live per-member simulation (bit-identical, just slower) instead of
/// replaying another trace's event stream.
#[derive(Debug, Clone)]
pub struct RecordedOracles {
    trace_fingerprint: u64,
    branches: Option<Arc<BranchOracle>>,
    icache: Option<Arc<IcacheOracle>>,
    dvi: Vec<Arc<DviOracle>>,
    /// Recorded D-cache outcome streams, keyed by the full data-side
    /// geometry group they were recorded for ([`SimConfig::dmem_geometry`]).
    dcache: Vec<(DmemGeometry, Arc<DcacheOracle>)>,
    /// Precomputed dispatch-group fusion tables, one per decode width.
    fusion: Vec<Arc<FusionTable>>,
}

impl RecordedOracles {
    /// Records the requested oracle streams from `trace` (one extra trace
    /// pass per stream).
    #[must_use]
    pub fn record(
        trace: &CapturedTrace,
        predictor: Option<PredictorConfig>,
        icache: Option<CacheConfig>,
        dvi_configs: &[DviConfig],
    ) -> RecordedOracles {
        RecordedOracles {
            trace_fingerprint: trace.fingerprint(),
            branches: predictor.map(|p| Arc::new(BranchOracle::record(trace, p))),
            icache: icache.map(|g| Arc::new(IcacheOracle::record(trace, g))),
            dvi: dvi_configs.iter().map(|&d| Arc::new(DviOracle::record(trace, d))).collect(),
            dcache: Vec::new(),
            fusion: Vec::new(),
        }
    }

    /// Adds a recorded D-cache outcome stream for one data-side geometry
    /// group (normally produced by [`record_dcache_oracle`]). The sweep
    /// runner hands the stream to members whose
    /// [`SimConfig::dmem_geometry`] matches `geometry` exactly.
    ///
    /// # Panics
    ///
    /// Panics if `geometry` is not a stock-model group, or if the oracle
    /// was recorded under a different L1D shape than `geometry` claims.
    #[must_use]
    pub fn with_dcache(mut self, geometry: DmemGeometry, oracle: Arc<DcacheOracle>) -> Self {
        assert_eq!(
            geometry.model,
            DcacheModelKind::Stock,
            "a D-cache oracle records the stock tag array"
        );
        assert_eq!(
            oracle.geometry(),
            geometry.dcache,
            "the oracle was recorded under a different L1D geometry than the group key claims"
        );
        self.dcache.push((geometry, oracle));
        self
    }

    /// Adds a precomputed dispatch-group fusion table (normally the
    /// trace's own, from [`CapturedTrace::build_fusion`]). The sweep
    /// runner hands the table to event-driven members whose decode width
    /// matches; a bundle carries at most one table per width.
    ///
    /// # Panics
    ///
    /// Panics if the bundle already holds a table for the same width.
    #[must_use]
    pub fn with_fusion(mut self, table: Arc<FusionTable>) -> Self {
        assert!(
            !self.fusion.iter().any(|t| t.width() == table.width()),
            "bundle already holds a fusion table for width {}",
            table.width()
        );
        self.fusion.push(table);
        self
    }

    /// Fingerprint of the trace the streams were recorded from.
    #[must_use]
    pub fn trace_fingerprint(&self) -> u64 {
        self.trace_fingerprint
    }

    /// The recorded branch oracle, if one was requested.
    #[must_use]
    pub fn branches(&self) -> Option<&Arc<BranchOracle>> {
        self.branches.as_ref()
    }

    /// The recorded I-cache oracle, if one was requested.
    #[must_use]
    pub fn icache(&self) -> Option<&Arc<IcacheOracle>> {
        self.icache.as_ref()
    }

    /// The recorded DVI event streams.
    #[must_use]
    pub fn dvi(&self) -> &[Arc<DviOracle>] {
        &self.dvi
    }

    /// The recorded D-cache outcome streams and their geometry-group keys.
    #[must_use]
    pub fn dcache(&self) -> &[(DmemGeometry, Arc<DcacheOracle>)] {
        &self.dcache
    }

    /// The bundled dispatch-group fusion tables (one per decode width).
    #[must_use]
    pub fn fusion(&self) -> &[Arc<FusionTable>] {
        &self.fusion
    }

    /// Serializes the bundle into an artifact container (see
    /// [`dvi_program::artifact`] for the checksummed layout).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        self.build().to_bytes()
    }

    /// Assembles the artifact sections (shared by
    /// [`RecordedOracles::to_bytes`] and [`RecordedOracles::save`]).
    fn build(&self) -> ArtifactWriter {
        let mut w = ArtifactWriter::new(ORACLES_MAGIC, ORACLES_VERSION);
        let mut meta = ByteWriter::new();
        meta.put_u64(self.trace_fingerprint);
        meta.put_bool(self.branches.is_some());
        meta.put_bool(self.icache.is_some());
        meta.put_u64(self.dvi.len() as u64);
        meta.put_u64(self.dcache.len() as u64);
        meta.put_u64(self.fusion.len() as u64);
        w.section(oracle_section::META, meta.into_bytes());
        if let Some(branches) = &self.branches {
            let mut b = ByteWriter::new();
            write_predictor_config(&mut b, branches.predictor);
            write_predictor_stats(&mut b, branches.totals);
            branches.bits.write(&mut b);
            w.section(oracle_section::BRANCHES, b.into_bytes());
        }
        if let Some(icache) = &self.icache {
            let mut b = ByteWriter::new();
            write_cache_config(&mut b, icache.geometry);
            b.put_u64(icache.totals.accesses);
            b.put_u64(icache.totals.misses);
            icache.bits.write(&mut b);
            w.section(oracle_section::ICACHE, b.into_bytes());
        }
        for oracle in &self.dvi {
            let mut b = ByteWriter::new();
            write_dvi_config(&mut b, oracle.config);
            b.put_u64(oracle.idvi_mask_len);
            oracle.elim.write(&mut b);
            b.put_u64(oracle.unmaps.len() as u64);
            for mask in &oracle.unmaps {
                b.put_u32(mask.bits());
            }
            w.section(oracle_section::DVI, b.into_bytes());
        }
        for (geometry, oracle) in &self.dcache {
            let mut b = ByteWriter::new();
            write_dmem_geometry(&mut b, *geometry);
            b.put_u64(oracle.len() as u64);
            for &addr in oracle.addrs() {
                b.put_u64(addr);
            }
            write_packed_bits(&mut b, oracle.writes());
            write_packed_bits(&mut b, oracle.hits());
            w.section(oracle_section::DCACHE, b.into_bytes());
        }
        for table in &self.fusion {
            w.section(oracle_section::FUSION, table.to_bytes());
        }
        w
    }

    /// Parses a bundle serialized by [`RecordedOracles::to_bytes`],
    /// verifying the container checksums and — when `expected_fingerprint`
    /// is given — that the bundle was recorded from that trace.
    ///
    /// # Errors
    ///
    /// Any [`ArtifactError`] from the container (bad magic, version skew,
    /// truncation, checksum mismatch, malformed payload), plus
    /// [`ArtifactError::FingerprintMismatch`] when the bundle belongs to a
    /// different trace.
    pub fn from_bytes(
        bytes: &[u8],
        expected_fingerprint: Option<u64>,
    ) -> Result<RecordedOracles, ArtifactError> {
        let reader = ArtifactReader::parse(bytes, ORACLES_MAGIC, ORACLES_VERSION)?;
        let mut meta = ByteReader::new(reader.section(oracle_section::META)?, "oracle meta");
        let trace_fingerprint = meta.u64()?;
        let has_branches = meta.bool()?;
        let has_icache = meta.bool()?;
        let dvi_count = meta.count()?;
        let dcache_count = meta.count()?;
        // Fusion tables arrived in bundle version 3.
        let fusion_count = if reader.version() >= 3 { meta.count()? } else { 0 };
        meta.finish()?;
        if let Some(expected) = expected_fingerprint {
            if trace_fingerprint != expected {
                return Err(ArtifactError::FingerprintMismatch {
                    expected,
                    found: trace_fingerprint,
                });
            }
        }
        let branches = if has_branches {
            let mut b = ByteReader::new(reader.section(oracle_section::BRANCHES)?, "branch oracle");
            let predictor = read_predictor_config(&mut b)?;
            let totals = read_predictor_stats(&mut b)?;
            let bits = BitStream::read(&mut b)?;
            b.finish()?;
            Some(Arc::new(BranchOracle { bits, predictor, totals }))
        } else {
            None
        };
        let icache = if has_icache {
            let mut b = ByteReader::new(reader.section(oracle_section::ICACHE)?, "icache oracle");
            let geometry = read_cache_config(&mut b)?;
            let totals = CacheStats { accesses: b.u64()?, misses: b.u64()? };
            let bits = BitStream::read(&mut b)?;
            b.finish()?;
            Some(Arc::new(IcacheOracle { bits, geometry, totals }))
        } else {
            None
        };
        let mut dvi = Vec::with_capacity(dvi_count);
        for payload in reader.sections_with_tag(oracle_section::DVI) {
            let mut b = ByteReader::new(payload, "dvi oracle");
            let config = read_dvi_config(&mut b)?;
            let idvi_mask_len = b.u64()?;
            let elim = BitStream::read(&mut b)?;
            let unmap_count = b.count()?;
            let mut unmaps = Vec::with_capacity(unmap_count);
            for _ in 0..unmap_count {
                unmaps.push(RegMask::from_bits(b.u32()?));
            }
            b.finish()?;
            dvi.push(Arc::new(DviOracle { config, elim, unmaps, idvi_mask_len }));
        }
        if dvi.len() != dvi_count {
            return Err(ArtifactError::Malformed { context: "dvi oracle count".into() });
        }
        let mut dcache = Vec::with_capacity(dcache_count);
        for payload in reader.sections_with_tag(oracle_section::DCACHE) {
            let mut b = ByteReader::new(payload, "dcache oracle");
            let geometry = read_dmem_geometry(&mut b)?;
            let accesses = b.count()?;
            let mut addrs = Vec::with_capacity(accesses);
            for _ in 0..accesses {
                addrs.push(b.u64()?);
            }
            let writes = read_packed_bits(&mut b)?;
            let hits = read_packed_bits(&mut b)?;
            b.finish()?;
            // Totals and the stream fingerprint are recomputed from the
            // streams, so a parsed oracle is self-consistent by
            // construction.
            let oracle = DcacheOracle::from_parts(geometry.dcache, addrs, writes, hits)
                .ok_or_else(|| ArtifactError::Malformed {
                    context: "dcache oracle stream lengths".into(),
                })?;
            dcache.push((geometry, Arc::new(oracle)));
        }
        if dcache.len() != dcache_count {
            return Err(ArtifactError::Malformed { context: "dcache oracle count".into() });
        }
        let mut fusion = Vec::with_capacity(fusion_count);
        for payload in reader.sections_with_tag(oracle_section::FUSION) {
            let table = FusionTable::from_bytes(payload)?;
            if fusion.iter().any(|t: &Arc<FusionTable>| t.width() == table.width()) {
                return Err(ArtifactError::Malformed {
                    context: format!("duplicate fusion table for width {}", table.width()),
                });
            }
            fusion.push(Arc::new(table));
        }
        if fusion.len() != fusion_count {
            return Err(ArtifactError::Malformed { context: "fusion table count".into() });
        }
        Ok(RecordedOracles { trace_fingerprint, branches, icache, dvi, dcache, fusion })
    }

    /// Atomically writes the bundle to `path` (temp file + rename).
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Io`] on filesystem failure.
    pub fn save(&self, path: &Path) -> Result<(), ArtifactError> {
        self.build().write_atomic(path)
    }

    /// Loads a bundle saved by [`RecordedOracles::save`]. See
    /// [`RecordedOracles::from_bytes`] for the checks performed.
    ///
    /// # Errors
    ///
    /// As [`RecordedOracles::from_bytes`], plus [`ArtifactError::Io`].
    pub fn load(
        path: &Path,
        expected_fingerprint: Option<u64>,
    ) -> Result<RecordedOracles, ArtifactError> {
        let bytes = std::fs::read(path)
            .map_err(|e| ArtifactError::Io(format!("reading {}: {e}", path.display())))?;
        RecordedOracles::from_bytes(&bytes, expected_fingerprint)
    }
}

fn write_predictor_config(w: &mut ByteWriter, p: PredictorConfig) {
    w.put_u64(p.bimodal_entries as u64);
    w.put_u64(p.gshare_entries as u64);
    w.put_u32(p.history_bits);
    w.put_u64(p.chooser_entries as u64);
    w.put_u64(p.btb.entries as u64);
    w.put_u64(p.ras_entries as u64);
}

fn read_predictor_config(r: &mut ByteReader<'_>) -> Result<PredictorConfig, ArtifactError> {
    Ok(PredictorConfig {
        bimodal_entries: r.count()?,
        gshare_entries: r.count()?,
        history_bits: r.u32()?,
        chooser_entries: r.count()?,
        btb: dvi_bpred::BtbConfig { entries: r.count()? },
        ras_entries: r.count()?,
    })
}

fn write_predictor_stats(w: &mut ByteWriter, s: PredictorStats) {
    w.put_u64(s.direction_predictions);
    w.put_u64(s.direction_mispredictions);
    w.put_u64(s.return_predictions);
    w.put_u64(s.return_mispredictions);
}

fn read_predictor_stats(r: &mut ByteReader<'_>) -> Result<PredictorStats, ArtifactError> {
    Ok(PredictorStats {
        direction_predictions: r.u64()?,
        direction_mispredictions: r.u64()?,
        return_predictions: r.u64()?,
        return_mispredictions: r.u64()?,
    })
}

fn write_cache_config(w: &mut ByteWriter, c: CacheConfig) {
    w.put_u64(c.size_bytes);
    w.put_u64(c.line_bytes);
    w.put_u64(c.associativity as u64);
    w.put_u64(c.latency);
}

fn read_cache_config(r: &mut ByteReader<'_>) -> Result<CacheConfig, ArtifactError> {
    Ok(CacheConfig {
        size_bytes: r.u64()?,
        line_bytes: r.u64()?,
        associativity: r.count()?,
        latency: r.u64()?,
    })
}

fn write_dvi_config(w: &mut ByteWriter, d: DviConfig) {
    w.put_bool(d.use_idvi);
    w.put_bool(d.use_edvi);
    w.put_bool(d.reclaim_phys_regs);
    w.put_bool(d.eliminate_saves);
    w.put_bool(d.eliminate_restores);
    w.put_u64(d.lvm_stack_entries as u64);
}

fn read_dvi_config(r: &mut ByteReader<'_>) -> Result<DviConfig, ArtifactError> {
    Ok(DviConfig {
        use_idvi: r.bool()?,
        use_edvi: r.bool()?,
        reclaim_phys_regs: r.bool()?,
        eliminate_saves: r.bool()?,
        eliminate_restores: r.bool()?,
        lvm_stack_entries: r.count()?,
    })
}

fn write_dmem_geometry(w: &mut ByteWriter, g: DmemGeometry) {
    w.put_u32(match g.model {
        DcacheModelKind::Stock => 0,
        DcacheModelKind::Perfect => 1,
    });
    write_cache_config(w, g.dcache);
    write_cache_config(w, g.l2);
    w.put_u64(g.memory_latency);
}

fn read_dmem_geometry(r: &mut ByteReader<'_>) -> Result<DmemGeometry, ArtifactError> {
    let model = match r.u32()? {
        0 => DcacheModelKind::Stock,
        1 => DcacheModelKind::Perfect,
        _ => return Err(ArtifactError::Malformed { context: "dcache model kind".into() }),
    };
    Ok(DmemGeometry {
        model,
        dcache: read_cache_config(r)?,
        l2: read_cache_config(r)?,
        memory_latency: r.u64()?,
    })
}

/// Serializes a full [`SimConfig`] — every field, so a decoded shard job
/// reproduces the member machine exactly (the shard-side
/// [`config_fingerprint`](crate::checkpoint::config_fingerprint) check
/// depends on it).
pub(crate) fn write_sim_config(w: &mut ByteWriter, c: &SimConfig) {
    w.put_u64(c.fetch_width as u64);
    w.put_u64(c.decode_width as u64);
    w.put_u64(c.issue_width as u64);
    w.put_u64(c.commit_width as u64);
    w.put_u64(c.window_size as u64);
    w.put_u64(c.fetch_queue as u64);
    w.put_u64(c.phys_regs as u64);
    w.put_u64(c.int_alu_units as u64);
    w.put_u64(c.int_mul_units as u64);
    w.put_u64(c.cache_ports as u64);
    w.put_u64(c.mispredict_penalty);
    write_cache_config(w, c.icache);
    write_cache_config(w, c.dcache);
    w.put_u32(match c.dcache_model {
        DcacheModelKind::Stock => 0,
        DcacheModelKind::Perfect => 1,
    });
    write_cache_config(w, c.l2);
    w.put_u64(c.memory_latency);
    write_predictor_config(w, c.predictor);
    write_dvi_config(w, c.dvi);
    w.put_u32(match c.scheduler {
        SchedulerKind::EventDriven => 0,
        SchedulerKind::NaiveScan => 1,
    });
}

/// Inverse of [`write_sim_config`].
pub(crate) fn read_sim_config(r: &mut ByteReader<'_>) -> Result<SimConfig, ArtifactError> {
    let fetch_width = r.count()?;
    let decode_width = r.count()?;
    let issue_width = r.count()?;
    let commit_width = r.count()?;
    let window_size = r.count()?;
    let fetch_queue = r.count()?;
    let phys_regs = r.count()?;
    let int_alu_units = r.count()?;
    let int_mul_units = r.count()?;
    let cache_ports = r.count()?;
    let mispredict_penalty = r.u64()?;
    let icache = read_cache_config(r)?;
    let dcache = read_cache_config(r)?;
    let dcache_model = match r.u32()? {
        0 => DcacheModelKind::Stock,
        1 => DcacheModelKind::Perfect,
        _ => return Err(ArtifactError::Malformed { context: "dcache model kind".into() }),
    };
    let l2 = read_cache_config(r)?;
    let memory_latency = r.u64()?;
    let predictor = read_predictor_config(r)?;
    let dvi = read_dvi_config(r)?;
    let scheduler = match r.u32()? {
        0 => SchedulerKind::EventDriven,
        1 => SchedulerKind::NaiveScan,
        _ => return Err(ArtifactError::Malformed { context: "scheduler kind".into() }),
    };
    Ok(SimConfig {
        fetch_width,
        decode_width,
        issue_width,
        commit_width,
        window_size,
        fetch_queue,
        phys_regs,
        int_alu_units,
        int_mul_units,
        cache_ports,
        mispredict_penalty,
        icache,
        dcache,
        dcache_model,
        l2,
        memory_latency,
        predictor,
        dvi,
        scheduler,
    })
}

fn write_packed_bits(w: &mut ByteWriter, bits: &PackedBits) {
    w.put_u64(bits.len() as u64);
    w.put_u64(bits.words().len() as u64);
    for &word in bits.words() {
        w.put_u64(word);
    }
}

fn read_packed_bits(r: &mut ByteReader<'_>) -> Result<PackedBits, ArtifactError> {
    let len = usize::try_from(r.u64()?)
        .map_err(|_| ArtifactError::Malformed { context: "packed bit length".into() })?;
    let words_len = r.count()?;
    let mut words = Vec::with_capacity(words_len);
    for _ in 0..words_len {
        words.push(r.u64()?);
    }
    PackedBits::from_raw(words, len)
        .ok_or_else(|| ArtifactError::Malformed { context: "packed bit words".into() })
}

/// Records a standalone D-cache oracle: one full run of `config` over
/// `trace` with a recording tag array behind the
/// [`dvi_mem::DataMemModel`] seam. The recording run is bit-identical to a
/// stock run of the same member (the recorder drives a real tag array and
/// only logs on the side); the recorded stream then replays for any member
/// that reproduces the recording member's exact data-access stream —
/// normally the members of its [`SimConfig::dmem_geometry`] group. Bundle
/// the result into a [`RecordedOracles`] artifact with
/// [`RecordedOracles::with_dcache`].
///
/// # Panics
///
/// Panics if `config` does not use the stock D-cache model, fails
/// [`SimConfig::validate`], or deadlocks on the trace (a truncated
/// recording must not be replayed as if complete).
#[must_use]
pub fn record_dcache_oracle(trace: &CapturedTrace, config: &SimConfig) -> Arc<DcacheOracle> {
    assert_eq!(
        config.dcache_model,
        DcacheModelKind::Stock,
        "a D-cache oracle records the stock tag array"
    );
    let (recorder, recording) = DcacheRecorder::new(config.dcache);
    let stats = SimSession::with_dcache_model(
        config.clone(),
        trace.cursor(),
        SharedTables::default(),
        Box::new(recorder),
    )
    .run_to_completion();
    assert!(!stats.deadlocked, "the D-cache recording run deadlocked; its stream is truncated");
    Arc::new(recording.finish())
}

/// The default of [`SweepRunner::with_oracle_min_members`]: the smallest
/// number of members sharing a recorded oracle for which the recording
/// pays for itself. Each recording is a full extra pass over the trace
/// (≈ 5 ns/record for the predictor, ≈ 2 ns for the L1I or the DVI
/// stream) amortized across the members that share it, while the
/// per-member saving is of the same few-ns order — so a stream shared by
/// only 1–2 members would pay pure overhead. Below the threshold members
/// simply keep private live structures (the decode table, built from the
/// *static* image in O(code size), is always shared).
pub const ORACLE_MIN_MEMBERS: usize = 3;

/// How many trace records the co-scheduler advances one member through
/// before re-evaluating which member is furthest behind.
///
/// The chunk bounds how far the member cursors spread through the trace —
/// the region between the laggard and the leader is what stays cache-hot,
/// and 64K records is ≈ 450KB of packed trace, comfortably resident on any
/// host where trace locality matters at all. Within that bound the chunk
/// errs far toward coarse: measured on the reference container (2MB L2 /
/// 260MB L3 Xeon), every member switch re-warms the host cache hierarchy
/// with the incoming member's working set (window ring, rename state,
/// cache tag arrays), costing up to ~30% of throughput at 16-cycle turns
/// and still ~10% at 8K-cycle turns, while the co-hotness it buys is worth
/// nothing there (the whole trace already fits in L3 for the serial loop).
const RECORDS_PER_TURN: u64 = 65_536;

/// Co-schedules N resumable sessions — one per machine configuration —
/// over a single shared captured trace. See the module documentation for
/// what is shared and the equivalence guarantee.
///
/// # Example
///
/// ```
/// use dvi_program::CapturedTrace;
/// use dvi_sim::{batch::SweepRunner, SimConfig};
///
/// # let program = dvi_workloads::generate(&dvi_workloads::WorkloadSpec::small("doc", 1));
/// # let abi = dvi_isa::Abi::mips_like();
/// # let compiled =
/// #     dvi_compiler::compile(&program, &abi, dvi_compiler::CompileOptions::default()).unwrap();
/// # let layout = compiled.program.layout().unwrap();
/// let trace = CapturedTrace::record(&layout, 10_000);
/// let configs = [34usize, 48, 64, 80]
///     .map(|n| SimConfig::micro97().with_phys_regs(n));
/// let stats = SweepRunner::new(&trace, configs).run();
/// assert_eq!(stats.len(), 4);
/// assert!(stats.iter().all(|s| !s.deadlocked));
/// ```
#[derive(Debug)]
pub struct SweepRunner<'a> {
    trace: &'a CapturedTrace,
    members: Vec<MemberSlot<'a>>,
    /// Products shared by every member (decode table, and — once
    /// [`SweepRunner::prepare_shared`] has run — the branch/I-cache
    /// oracles and the dependence graph where applicable).
    shared: SharedTables,
    /// One recorded DVI event stream per distinct [`DviConfig`] that
    /// enough members share (members whose group is smaller fall back to
    /// private live engines).
    dvi_oracles: Vec<Arc<DviOracle>>,
    /// One recorded L1D outcome stream per qualifying data-side geometry
    /// group ([`SweepRunner::with_dcache_oracle`]), keyed by the full
    /// [`DmemGeometry`] the group agrees on.
    dcache_oracles: Vec<(DmemGeometry, Arc<DcacheOracle>)>,
    /// Whether `prepare_shared` records D-cache oracles (opt-in:
    /// [`SweepRunner::with_dcache_oracle`]).
    record_dcache: bool,
    /// Minimum members sharing a recording before it is worth making.
    oracle_min_members: usize,
    /// Whether members wire dispatch through the shared dependence graph
    /// (see [`SweepRunner::without_depgraph`]).
    use_depgraph: bool,
    /// One dispatch-group fusion table per distinct decode width among the
    /// event-driven members (built or adopted in `prepare_shared`; members
    /// pick the width-matching table in [`SweepRunner::tables_for`]).
    fusion_tables: Vec<Arc<FusionTable>>,
    /// Whether members dispatch whole fetch groups through fusion tables
    /// (see [`SweepRunner::without_fusion`]).
    use_fusion: bool,
    /// Whether `prepare_shared` has run.
    prepared: bool,
    /// The trace fingerprint claimed by preloaded oracle products
    /// ([`SweepRunner::with_recorded_oracles`]): the integrity check
    /// `prepare_shared` enforces before any member replays them.
    products_fingerprint: Option<u64>,
    /// Whether the branch/I-cache/DVI oracles were installed from a
    /// recorded bundle (suppresses re-recording in `prepare_shared`).
    preloaded_oracles: bool,
    /// Injected test faults ([`SweepRunner::with_member_fault`]).
    faults: Vec<FaultSpec>,
    /// Checkpoint policy ([`SweepRunner::with_checkpoint`]).
    checkpoint: Option<CheckpointPolicy>,
    /// Test hook: panic at the top of this (0-based) scheduling turn, after
    /// earlier turns' checkpoints have been written.
    abort_after_turns: Option<u64>,
}

/// Where and how often [`SweepRunner::run_outcomes`] persists its progress.
#[derive(Debug, Clone)]
struct CheckpointPolicy {
    path: PathBuf,
    /// Snapshot cadence in scheduling turns (≥ 1).
    every_turns: u64,
}

/// One sweep member: its configuration, its lifecycle state, and — when a
/// first attempt already failed — the reason it is being retried on
/// private live structures.
///
/// Sessions are materialized only when first scheduled and retired to
/// their outcome the moment they drain, so at any instant only the members
/// actually inside the current trace window hold live pipeline state —
/// when the scheduling chunk covers the whole trace that is *one* session
/// at a time, and its allocations are recycled member to member (the
/// hand-rolled serial loop's allocator warmth, measured worth ~10% on the
/// reference container, is preserved).
#[derive(Debug)]
struct MemberSlot<'a> {
    /// The machine configuration (kept alongside the live session so a
    /// caught panic can rebuild the member from scratch).
    config: Box<SimConfig>,
    /// `Some(reason)` once the member's first attempt failed and it is
    /// (or was) re-run on private live structures.
    degraded: Option<String>,
    state: MemberState<'a>,
}

/// A member's lifecycle state.
#[derive(Debug)]
enum MemberState<'a> {
    /// Not yet scheduled (or reset for a degraded retry).
    Pending,
    /// Currently holding live pipeline state.
    Active(Box<SimSession<TraceCursor<'a>>>),
    /// Finished; holds the member's outcome.
    Done(Box<MemberOutcome>),
}

impl MemberSlot<'_> {
    /// The member's position in the trace: records fetched so far, or
    /// `None` once finished.
    fn position(&self) -> Option<u64> {
        match &self.state {
            MemberState::Pending => Some(0),
            MemberState::Active(session) => Some(session.stats().fetched_instrs),
            MemberState::Done(_) => None,
        }
    }
}

impl<'a> SweepRunner<'a> {
    /// Prepares one member per configuration, all reading `trace` through
    /// independent cursors. The static-decode table is always shared; the
    /// remaining trace-pure products are recorded lazily when the sweep
    /// runs (see [`SweepRunner::prepare_shared`]), so builder options can
    /// still adjust the sharing policy.
    #[must_use]
    pub fn new(trace: &'a CapturedTrace, configs: impl IntoIterator<Item = SimConfig>) -> Self {
        let shared = SharedTables {
            decode: Some(Arc::new(StaticDecodeTable::for_trace(trace))),
            ..SharedTables::default()
        };
        let members = configs
            .into_iter()
            .map(|c| MemberSlot {
                config: Box::new(c),
                degraded: None,
                state: MemberState::Pending,
            })
            .collect();
        SweepRunner {
            trace,
            members,
            shared,
            dvi_oracles: Vec::new(),
            dcache_oracles: Vec::new(),
            record_dcache: false,
            oracle_min_members: ORACLE_MIN_MEMBERS,
            use_depgraph: true,
            fusion_tables: Vec::new(),
            use_fusion: true,
            prepared: false,
            products_fingerprint: None,
            preloaded_oracles: false,
            faults: Vec::new(),
            checkpoint: None,
            abort_after_turns: None,
        }
    }

    /// Installs a pre-recorded oracle bundle (normally loaded from a
    /// [`RecordedOracles`] artifact) in place of recording the streams at
    /// run time. Before any member replays them, `prepare_shared` verifies
    /// the bundle's trace fingerprint against the sweep's trace; on
    /// mismatch every member **degrades to live per-member simulation**
    /// (reported as [`MemberOutcome::Degraded`] — statistics are
    /// bit-identical either way, the stale bundle just stops paying for
    /// itself). A bundle whose predictor/L1I streams don't match a
    /// member's configuration degrades that member the same way.
    ///
    /// # Panics
    ///
    /// Panics if called after the sweep has started.
    #[must_use]
    pub fn with_recorded_oracles(mut self, oracles: &RecordedOracles) -> Self {
        assert!(!self.prepared, "install recorded oracles before running the sweep");
        self.shared.branches = oracles.branches.clone();
        self.shared.icache = oracles.icache.clone();
        self.dvi_oracles = oracles.dvi.clone();
        self.dcache_oracles = oracles.dcache.clone();
        // Fusion tables indexed past the trace would panic at dispatch, so
        // a length mismatch (a bundle from a truncated capture of the same
        // program, say) drops the table and rebuilds live in
        // `prepare_shared` — never wrong statistics, just no head start.
        self.fusion_tables =
            oracles.fusion.iter().filter(|t| t.len() == self.trace.len()).cloned().collect();
        self.products_fingerprint = Some(oracles.trace_fingerprint);
        self.preloaded_oracles = true;
        self
    }

    /// Enables the shared D-cache oracle for this sweep (off by default):
    /// when the sweep runs, the first member of each qualifying
    /// stock-model geometry group ([`SweepRunner::dmem_geometry_groups`],
    /// at least [`SweepRunner::with_oracle_min_members`] members) runs
    /// once with a recording tag array — one extra full member-run per
    /// group, amortized across the group — and every member of the group
    /// then replays the recorded L1D outcomes instead of driving a
    /// private tag array.
    ///
    /// The D-cache access stream is **issue-order dependent**, so a group
    /// member whose configuration perturbs issue order (register
    /// pressure, width, ports, DVI elimination…) may produce a different
    /// stream than the recording member. The replay cursor checks every
    /// access against the recorded (address, kind) stream and panics at
    /// the first divergence; the member panic boundary then retries the
    /// member live and reports [`MemberOutcome::Degraded`] — statistics
    /// stay bit-identical, a diverging member only costs host time.
    /// Measure how often members actually share their group leader's
    /// stream with [`SweepRunner::measure_dcache_qualification`].
    ///
    /// # Panics
    ///
    /// Panics if called after the sweep has started.
    #[must_use]
    pub fn with_dcache_oracle(mut self) -> Self {
        assert!(!self.prepared, "enable the D-cache oracle before running the sweep");
        self.record_dcache = true;
        self
    }

    /// Test-only fault injection: panics member `member` once it has
    /// fetched `after_records` records, exactly once. The member's first
    /// attempt dies mid-flight and the degraded retry completes, so the
    /// sweep reports [`MemberOutcome::Degraded`] with statistics
    /// bit-identical to a healthy run — the invariant the fault-tolerance
    /// suite locks.
    #[must_use]
    pub fn with_member_fault(mut self, member: usize, after_records: u64) -> Self {
        self.faults.push(FaultSpec {
            member,
            after_records,
            sticky: false,
            fired: Arc::new(AtomicBool::new(false)),
        });
        self
    }

    /// Test-only fault injection, sticky variant: the fault fires on every
    /// attempt, so the degraded retry dies too and the sweep reports
    /// [`MemberOutcome::Panicked`] for the member.
    #[must_use]
    pub fn with_sticky_member_fault(mut self, member: usize, after_records: u64) -> Self {
        self.faults.push(FaultSpec {
            member,
            after_records,
            sticky: true,
            fired: Arc::new(AtomicBool::new(false)),
        });
        self
    }

    /// Persists sweep progress to `path` after every scheduling turn (see
    /// the module documentation's *Checkpoint/resume*): completed members'
    /// outcomes plus the in-progress members' trace positions, in a
    /// checksummed artifact written atomically. Resume with
    /// [`SweepRunner::resume`].
    ///
    /// A turn whose snapshot would resume to the exact same outcomes as
    /// the one already on disk — nothing newly completed, only in-flight
    /// fetch positions moved, and resume re-runs in-flight members from
    /// record 0 regardless — skips the disk write, so the durable-write
    /// cadence is one write per *member completion*, not per turn.
    ///
    /// Only the serial runner ([`SweepRunner::run`] /
    /// [`SweepRunner::run_outcomes`]) checkpoints; the parallel runners
    /// hand their members to worker threads whole, so there is no turn
    /// boundary to snapshot at.
    #[must_use]
    pub fn with_checkpoint(self, path: impl Into<PathBuf>) -> Self {
        self.with_checkpoint_every(path, 1)
    }

    /// [`SweepRunner::with_checkpoint`] with an explicit cadence: snapshot
    /// every `every_turns` scheduling turns (clamped to ≥ 1). A final
    /// snapshot is always written when the sweep completes.
    #[must_use]
    pub fn with_checkpoint_every(mut self, path: impl Into<PathBuf>, every_turns: u64) -> Self {
        self.checkpoint =
            Some(CheckpointPolicy { path: path.into(), every_turns: every_turns.max(1) });
        self
    }

    /// Test hook for the kill/resume suite: panic at the top of scheduling
    /// turn `turns` (0-based), after earlier turns' checkpoints were
    /// written — simulating a crash at an arbitrary point mid-sweep.
    #[must_use]
    pub fn with_abort_after_turns(mut self, turns: u64) -> Self {
        self.abort_after_turns = Some(turns);
        self
    }

    /// Reconstructs a sweep from a checkpoint written by a previous
    /// [`SweepRunner::with_checkpoint`] run over the same trace and
    /// configuration grid. Members the snapshot recorded as finished are
    /// restored verbatim; interrupted members re-run from record 0 when
    /// the resumed sweep runs — bit-identical to the uninterrupted run,
    /// because member statistics are a pure function of (configuration,
    /// trace, shared products).
    ///
    /// Builder options (checkpointing, recorded oracles, fault hooks) are
    /// not persisted; re-apply them to the returned runner as needed —
    /// typically `.with_checkpoint(path)` again to keep snapshotting.
    ///
    /// # Errors
    ///
    /// Any [`ArtifactError`] from reading the snapshot, plus
    /// [`ArtifactError::FingerprintMismatch`] when the snapshot belongs to
    /// a different trace and [`ArtifactError::Malformed`] when the
    /// configuration grid doesn't match the one the snapshot was taken
    /// from.
    pub fn resume(
        trace: &'a CapturedTrace,
        configs: impl IntoIterator<Item = SimConfig>,
        path: &Path,
    ) -> Result<SweepRunner<'a>, ArtifactError> {
        let snapshot = SweepCheckpoint::load(path)?;
        let mut runner = SweepRunner::new(trace, configs);
        let found = trace.fingerprint();
        if snapshot.trace_fingerprint != found {
            return Err(ArtifactError::FingerprintMismatch {
                expected: snapshot.trace_fingerprint,
                found,
            });
        }
        if snapshot.members.len() != runner.members.len() {
            return Err(ArtifactError::Malformed {
                context: format!(
                    "checkpoint describes {} members, sweep has {}",
                    snapshot.members.len(),
                    runner.members.len()
                ),
            });
        }
        for (i, (slot, member)) in runner.members.iter_mut().zip(&snapshot.members).enumerate() {
            let expected = config_fingerprint(&slot.config);
            if member.config_fingerprint != expected {
                return Err(ArtifactError::Malformed {
                    context: format!("checkpoint member {i} was taken from a different config"),
                });
            }
            if let MemberCheckpointState::Done(outcome) = &member.state {
                slot.state = MemberState::Done(outcome.clone());
            }
        }
        Ok(runner)
    }

    /// Disables dependence-graph dispatch wiring for this sweep: members
    /// rename sources through their private alias tables even when the
    /// trace carries a prebuilt graph. A host-time policy knob only —
    /// statistics are bit-identical either way. Useful where the graph's
    /// streamed row traffic (~9 bytes per record per member) outweighs the
    /// skipped alias-table walk; on the reference container the two are
    /// within measurement noise of each other (see the ROADMAP's PR 4
    /// decomposition).
    #[must_use]
    pub fn without_depgraph(mut self) -> Self {
        assert!(!self.prepared, "set the depgraph policy before running the sweep");
        self.use_depgraph = false;
        self
    }

    /// Disables dispatch-group fusion for this sweep: members dispatch
    /// every record through the cycle-accurate slow loop even when a
    /// fusion table could carry whole fetch groups. A host-time policy
    /// knob only — statistics are bit-identical either way (the invariant
    /// the `fusion_equiv` suite locks); the A/B half of the
    /// `backend.fusion_vs_live` bench measurement.
    #[must_use]
    pub fn without_fusion(mut self) -> Self {
        assert!(!self.prepared, "set the fusion policy before running the sweep");
        self.use_fusion = false;
        self
    }

    /// Sets the oracle-recording amortization threshold: a pre-recorded
    /// event stream (branch, I-cache or DVI oracle) is only recorded when
    /// at least `n` members would share it, since each recording costs a
    /// full extra pass over the trace. The default is
    /// [`ORACLE_MIN_MEMBERS`]; `1` forces recording for every product,
    /// `usize::MAX` disables oracle recording entirely. Values below 1 are
    /// clamped to 1. The choice affects host time only — member statistics
    /// are bit-identical either way.
    #[must_use]
    pub fn with_oracle_min_members(mut self, n: usize) -> Self {
        assert!(!self.prepared, "set the oracle threshold before running the sweep");
        self.oracle_min_members = n.max(1);
        self
    }

    /// Records the shareable trace-pure products under the current policy:
    ///
    /// * the **dependence graph** — config-independent, so it is shared by
    ///   every member: taken from the trace when already attached
    ///   ([`CapturedTrace::build_depgraph`]), otherwise built here for
    ///   sweeps of at least two members;
    /// * the **branch** and **I-cache oracles** — when every member agrees
    ///   on the predictor configuration / L1I geometry respectively and
    ///   the sweep meets the amortization threshold;
    /// * one **DVI oracle per distinct [`DviConfig`]** shared by at least
    ///   the threshold number of members (fig05/fig06-style sweeps vary
    ///   the DVI axis, so agreement is per group, not global); members in
    ///   smaller groups fall back to private live engines;
    /// * when [`SweepRunner::with_dcache_oracle`] opted in, one **D-cache
    ///   oracle per qualifying stock-model [`DmemGeometry`] group**
    ///   ([`SweepRunner::record_dcache_oracles`]), recorded by running the
    ///   group's first member once with a recording tag array.
    fn prepare_shared(&mut self) {
        if self.prepared {
            return;
        }
        self.prepared = true;
        let configs: Vec<&SimConfig> = self.members.iter().map(|m| &*m.config).collect();
        // Only event-driven members consume the graph (the naive scan's
        // reference loops re-check per-operand ready bits), so a grid
        // without any skips the build entirely.
        let any_event_driven =
            configs.iter().any(|c| c.scheduler == crate::config::SchedulerKind::EventDriven);
        self.shared.depgraph = match self.trace.depgraph() {
            _ if !self.use_depgraph || !any_event_driven => None,
            Some(graph) => Some(Arc::clone(graph)),
            None if configs.len() >= 2 => Some(Arc::new(DepGraph::build(self.trace))),
            None => None,
        };
        if self.preloaded_oracles {
            // Integrity gate for products loaded from an artifact: a
            // bundle recorded from a different trace would drive members
            // through another trace's event stream. Degrade the whole
            // sweep to live per-member structures instead — statistics
            // are bit-identical, the stale bundle just stops helping.
            let found = self.trace.fingerprint();
            if self.products_fingerprint != Some(found) {
                let reason = format!(
                    "recorded oracle bundle was captured from a different trace \
                     (bundle fingerprint {:#018x}, trace fingerprint {found:#018x})",
                    self.products_fingerprint.unwrap_or(0)
                );
                self.shared.branches = None;
                self.shared.icache = None;
                self.dvi_oracles.clear();
                self.dcache_oracles.clear();
                self.fusion_tables.clear();
                for slot in &mut self.members {
                    if !matches!(slot.state, MemberState::Done(_)) {
                        slot.degraded = Some(reason.clone());
                    }
                }
                return;
            }
            self.prepare_fusion();
            return;
        }
        if let Some(first) = configs.first().filter(|_| configs.len() >= self.oracle_min_members) {
            if configs.iter().all(|c| c.predictor == first.predictor) {
                self.shared.branches =
                    Some(Arc::new(BranchOracle::record(self.trace, first.predictor)));
            }
            if configs.iter().all(|c| c.icache == first.icache) {
                self.shared.icache = Some(Arc::new(IcacheOracle::record(self.trace, first.icache)));
            }
        }
        let mut groups: Vec<(DviConfig, usize)> = Vec::new();
        for config in &configs {
            match groups.iter_mut().find(|(dvi, _)| *dvi == config.dvi) {
                Some((_, count)) => *count += 1,
                None => groups.push((config.dvi, 1)),
            }
        }
        self.dvi_oracles = groups
            .into_iter()
            .filter(|&(_, count)| count >= self.oracle_min_members)
            .map(|(dvi, _)| Arc::new(DviOracle::record(self.trace, dvi)))
            .collect();
        if self.record_dcache {
            self.record_dcache_oracles();
        }
        self.prepare_fusion();
    }

    /// Builds (or adopts) one dispatch-group fusion table per distinct
    /// decode width among the event-driven members. Fusion piggybacks on
    /// the dependence graph (the fast path wires wakeups from precomputed
    /// producer offsets, so it only ever attaches alongside the graph);
    /// when the graph is disabled or absent, fusion is too. Tables already
    /// attached to the trace ([`CapturedTrace::build_fusion`]) or adopted
    /// from a recorded bundle are reused; missing widths are built live
    /// here — one `O(records)` pass each, amortized across every member
    /// that shares the width.
    fn prepare_fusion(&mut self) {
        if !self.use_fusion || self.shared.depgraph.is_none() {
            self.fusion_tables.clear();
            return;
        }
        let graph = Arc::clone(self.shared.depgraph.as_ref().expect("gated above"));
        let mut widths: Vec<usize> = Vec::new();
        for slot in &self.members {
            let config = &slot.config;
            if config.scheduler == crate::config::SchedulerKind::EventDriven
                && (1..=FusionTable::MAX_WIDTH).contains(&config.decode_width)
                && !widths.contains(&config.decode_width)
            {
                widths.push(config.decode_width);
            }
        }
        for width in widths {
            if self.fusion_tables.iter().any(|t| t.width() == width) {
                continue;
            }
            let table = match self.trace.fusion_for(width) {
                Some(table) => Arc::clone(table),
                None => FusionTable::build_shared(self.trace, &graph, width),
            };
            self.fusion_tables.push(table);
        }
    }

    /// Records one [`DcacheOracle`] per qualifying data-side geometry
    /// group: stock L1D model, at least the oracle threshold of members.
    /// The group's first member runs once with a recording tag array
    /// substituted behind the [`dvi_mem::DataMemModel`] seam (consuming
    /// the already-recorded trace-order oracles, so the run is itself
    /// accelerated); the recorded (address, kind, outcome) stream then
    /// stands in for the whole group's private tag arrays. A recording run
    /// that panics or trips the deadlock watchdog simply leaves its group
    /// on live tag arrays — the oracle is a host-time optimization, never
    /// load-bearing for statistics.
    fn record_dcache_oracles(&mut self) {
        for (geometry, indices) in self.dmem_geometry_groups() {
            if geometry.model != DcacheModelKind::Stock || indices.len() < self.oracle_min_members {
                continue;
            }
            let config = (*self.members[indices[0]].config).clone();
            let tables = self.tables_for(&config);
            let trace = self.trace;
            let (recorder, recording) = DcacheRecorder::new(config.dcache);
            let run = catch_unwind(AssertUnwindSafe(move || {
                SimSession::with_dcache_model(config, trace.cursor(), tables, Box::new(recorder))
                    .run_to_completion()
            }));
            match run {
                Ok(stats) if !stats.deadlocked => {
                    self.dcache_oracles.push((geometry, Arc::new(recording.finish())));
                }
                _ => {}
            }
        }
    }

    /// The qualification measurement behind the D-cache oracle's sharing
    /// rule: instruments every member of every stock-model geometry group
    /// with a [`DcacheFingerprinter`] — a stock tag array that additionally
    /// folds the member's (address, kind, issue-order) data-access stream
    /// into a [`dvi_mem::StreamFingerprint`] — runs the members live over
    /// decode-only shared tables, and reports, per group, how many members
    /// reproduced the group leader's exact stream.
    ///
    /// The resulting rate is exactly the fraction of members a recorded
    /// [`DcacheOracle`] can serve without divergence: replay is valid iff
    /// the member's stream is byte-for-byte the recording member's, and
    /// the fingerprint hashes the full stream. The measurement runs every
    /// member once (live, unaccelerated), so it costs about one full sweep
    /// — it is a reporting/bench tool, not part of the sweep fast path.
    /// Members that panic or deadlock under instrumentation count as
    /// non-matching.
    #[must_use]
    pub fn measure_dcache_qualification(&self) -> DcacheQualification {
        let decode = self.shared.decode.clone();
        let mut groups = Vec::new();
        for (geometry, indices) in self.dmem_geometry_groups() {
            if geometry.model != DcacheModelKind::Stock {
                continue;
            }
            let prints: Vec<Option<(u64, u64)>> = indices
                .iter()
                .map(|&i| {
                    let config = (*self.members[i].config).clone();
                    let tables = SharedTables { decode: decode.clone(), ..SharedTables::default() };
                    let (model, probe) = DcacheFingerprinter::new(config.dcache);
                    let trace = self.trace;
                    let run = catch_unwind(AssertUnwindSafe(move || {
                        SimSession::with_dcache_model(
                            config,
                            trace.cursor(),
                            tables,
                            Box::new(model),
                        )
                        .run_to_completion()
                    }));
                    match run {
                        Ok(stats) if !stats.deadlocked => {
                            let probe = probe.lock().expect("fingerprint probe poisoned");
                            Some((probe.value(), probe.len()))
                        }
                        _ => None,
                    }
                })
                .collect();
            let matching = match prints.first().copied().flatten() {
                Some(leader) => prints.iter().filter(|p| **p == Some(leader)).count(),
                None => 0,
            };
            groups.push(DcacheGroupQualification { geometry, members: indices.len(), matching });
        }
        DcacheQualification { groups }
    }

    /// The shared-product bundle member `config` consumes: the globally
    /// shared products plus its DVI group's oracle and its data-side
    /// geometry group's D-cache oracle, if recorded. The D-cache lookup
    /// keys on the full [`DmemGeometry`] — model included — so a
    /// [`dvi_mem::PerfectDcache`] member never receives a stock-tag-array
    /// recording.
    fn tables_for(&self, config: &SimConfig) -> SharedTables {
        let mut tables = self.shared.clone();
        tables.dvi = self.dvi_oracles.iter().find(|o| o.config() == config.dvi).map(Arc::clone);
        let geometry = config.dmem_geometry();
        tables.dcache =
            self.dcache_oracles.iter().find(|(g, _)| *g == geometry).map(|(_, o)| Arc::clone(o));
        tables.fusion =
            self.fusion_tables.iter().find(|t| t.width() == config.decode_width).map(Arc::clone);
        tables
    }

    /// Private-fallback product bundle for a degraded retry: only the
    /// static decode table survives (recomputed locally from the trace in
    /// [`SweepRunner::new`], never loaded from an artifact); the member
    /// carries live predictor/L1I/DVI structures and alias-table renaming.
    fn private_tables(&self) -> SharedTables {
        SharedTables { decode: self.shared.decode.clone(), ..SharedTables::default() }
    }

    /// Number of sweep members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the sweep has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Runs every member to completion over the shared trace and returns
    /// the per-configuration statistics, in the order the configurations
    /// were given.
    ///
    /// Scheduling policy: always advance the member furthest *behind* in
    /// the trace (fewest records fetched), [`RECORDS_PER_TURN`] records at
    /// a time. This bounds how far the live cursors spread through the
    /// trace regardless of how fast each machine consumes instructions —
    /// and because sessions share no mutable state, the schedule has no
    /// effect on the statistics themselves. Traces no longer than the
    /// chunk degenerate to one member at a time, which is exactly the
    /// cheapest schedule when the whole trace is cache-resident anyway
    /// (see [`RECORDS_PER_TURN`]).
    #[must_use]
    pub fn run(self) -> Vec<SimStats> {
        self.run_outcomes().into_iter().map(MemberOutcome::into_stats).collect()
    }

    /// [`SweepRunner::run`] with per-member fault isolation surfaced: one
    /// [`MemberOutcome`] per configuration, in grid order. A member that
    /// panics (or fails a shared-product integrity check) is retried once
    /// from record 0 on private live structures and reported as
    /// [`MemberOutcome::Degraded`]; a watchdog abort is reported as
    /// [`MemberOutcome::Deadlocked`]; only a double failure yields
    /// [`MemberOutcome::Panicked`] — and none of them perturb sibling
    /// members.
    ///
    /// # Panics
    ///
    /// Panics if a [`SweepRunner::with_checkpoint`] snapshot cannot be
    /// written (a durability request the caller made explicitly), or at
    /// the [`SweepRunner::with_abort_after_turns`] test hook.
    #[must_use]
    pub fn run_outcomes(mut self) -> Vec<MemberOutcome> {
        self.prepare_shared();
        // The fingerprint is a whole-trace hash; compute it once per run,
        // not once per checkpointed turn.
        let trace_fp = self.checkpoint.as_ref().map(|_| self.trace.fingerprint());
        let mut turns: u64 = 0;
        // Done-member count at the last snapshot actually written. A
        // resumed sweep restores `Done` members and re-runs in-flight ones
        // from record 0, so a snapshot whose only change is in-flight
        // fetch positions resumes to the same outcomes as its predecessor
        // — those writes are skipped (`None` = nothing written yet, so the
        // first eligible turn always writes).
        let mut written_done: Option<usize> = None;
        loop {
            if self.abort_after_turns.is_some_and(|n| turns >= n) {
                panic!("sweep aborted by test hook at scheduling turn {turns}");
            }
            let mut laggard: Option<(usize, u64)> = None;
            for (i, member) in self.members.iter().enumerate() {
                let Some(pos) = member.position() else { continue };
                if laggard.is_none_or(|(_, best)| pos < best) {
                    laggard = Some((i, pos));
                }
            }
            let Some((i, pos)) = laggard else { break };
            self.advance(i, pos + RECORDS_PER_TURN);
            turns += 1;
            if let (Some(policy), Some(fp)) = (&self.checkpoint, trace_fp) {
                if turns.is_multiple_of(policy.every_turns) {
                    let done = self.done_count();
                    if written_done != Some(done) {
                        self.snapshot(fp, turns)
                            .save(&policy.path)
                            .expect("sweep checkpoint write failed");
                        written_done = Some(done);
                    }
                }
            }
        }
        // Always leave a final snapshot: resuming a finished sweep must
        // restore every outcome instead of re-running anything.
        if let (Some(policy), Some(fp)) = (&self.checkpoint, trace_fp) {
            if written_done != Some(self.members.len()) {
                self.snapshot(fp, turns).save(&policy.path).expect("sweep checkpoint write failed");
            }
        }
        self.members
            .into_iter()
            .map(|m| match m.state {
                MemberState::Done(outcome) => *outcome,
                _ => unreachable!("every member is finished when the laggard scan comes up empty"),
            })
            .collect()
    }

    /// How many members have finished (their outcome is final).
    fn done_count(&self) -> usize {
        self.members.iter().filter(|m| matches!(m.state, MemberState::Done(_))).count()
    }

    /// The checkpoint image of the sweep's current progress.
    fn snapshot(&self, trace_fingerprint: u64, turns: u64) -> SweepCheckpoint {
        SweepCheckpoint {
            trace_fingerprint,
            turns,
            members: self
                .members
                .iter()
                .map(|slot| MemberCheckpoint {
                    config_fingerprint: config_fingerprint(&slot.config),
                    state: match &slot.state {
                        MemberState::Done(outcome) => MemberCheckpointState::Done(outcome.clone()),
                        _ => MemberCheckpointState::InFlight {
                            fetched: slot.position().unwrap_or(0),
                        },
                    },
                })
                .collect(),
        }
    }

    /// Groups the member indices by data-side geometry
    /// ([`SimConfig::dmem_geometry`]), in first-appearance order. Members
    /// of one group model identical L1 data sides — same tag-array
    /// geometry *and* same model kind — so they make identical L1D
    /// hit/miss decisions for identical access sequences. This is the
    /// agreement rule the shared [`DcacheOracle`] is recorded under
    /// ([`SweepRunner::with_dcache_oracle`]), exactly as [`DviOracle`]s
    /// are grouped per distinct [`DviConfig`]; how often group members
    /// actually reproduce each other's access streams is what
    /// [`SweepRunner::measure_dcache_qualification`] measures.
    #[must_use]
    pub fn dmem_geometry_groups(&self) -> Vec<(DmemGeometry, Vec<usize>)> {
        let mut groups: Vec<(DmemGeometry, Vec<usize>)> = Vec::new();
        for (i, member) in self.members.iter().enumerate() {
            let geometry = member.config.dmem_geometry();
            match groups.iter_mut().find(|(g, _)| *g == geometry) {
                Some((_, indices)) => indices.push(i),
                None => groups.push((geometry, vec![i])),
            }
        }
        groups
    }

    /// Runs every member to completion across **threads** and returns the
    /// per-configuration statistics in the order the configurations were
    /// given, bit-identical to [`SweepRunner::run`] and to serial replays.
    ///
    /// The shared products are recorded once up front (same policy as the
    /// serial runner), then the members — which share no mutable state,
    /// only `Arc`s of immutable trace-pure products — are distributed
    /// across a rayon worker pool, each running to completion on its own
    /// thread. Determinism is structural, not scheduling-dependent: a
    /// member's statistics are a pure function of its configuration, the
    /// trace and the shared products, so thread count and interleaving
    /// cannot perturb them (locked by `tests/parallel_equiv.rs` across
    /// thread counts).
    ///
    /// Scheduling trade-off versus [`SweepRunner::run`]: the serial
    /// runner's laggard-first co-scheduling keeps all member cursors in
    /// one cache-hot region of the trace; the parallel runner gives that
    /// up in exchange for N cores, each member streaming the whole trace
    /// privately. On a multi-core host with the trace resident in a
    /// shared cache level the trade is clearly right; on one core it
    /// degenerates to the serial member-at-a-time schedule.
    #[must_use]
    pub fn run_parallel(self) -> Vec<SimStats> {
        self.run_parallel_outcomes().into_iter().map(MemberOutcome::into_stats).collect()
    }

    /// [`SweepRunner::run_parallel`] with per-member fault isolation
    /// surfaced (see [`SweepRunner::run_outcomes`]): each member runs to
    /// completion inside its own panic boundary on whatever rayon worker
    /// picked it up, so one failing member costs exactly its own slot.
    #[must_use]
    pub fn run_parallel_outcomes(self) -> Vec<MemberOutcome> {
        let (trace, jobs) = self.into_parallel_jobs();
        jobs.into_par_iter().map(|job| run_member_outcome(trace, job)).collect()
    }

    /// [`SweepRunner::run_parallel`] with an explicit worker-thread count
    /// (clamped to `1..=members`): the knob the equivalence tests and the
    /// bench sweep over. Workers pull members off a shared queue, so a
    /// straggler member does not idle the other threads.
    #[must_use]
    pub fn run_parallel_threads(self, threads: usize) -> Vec<SimStats> {
        self.run_parallel_threads_outcomes(threads)
            .into_iter()
            .map(MemberOutcome::into_stats)
            .collect()
    }

    /// [`SweepRunner::run_parallel_threads`] with per-member fault
    /// isolation surfaced (see [`SweepRunner::run_outcomes`]).
    #[must_use]
    pub fn run_parallel_threads_outcomes(self, threads: usize) -> Vec<MemberOutcome> {
        let (trace, jobs) = self.into_parallel_jobs();
        let threads = threads.clamp(1, jobs.len().max(1));
        if threads == 1 {
            return jobs.into_iter().map(|job| run_member_outcome(trace, job)).collect();
        }
        let next = AtomicUsize::new(0);
        let mut results: Vec<Option<MemberOutcome>> = (0..jobs.len()).map(|_| None).collect();
        let jobs = &jobs;
        let next = &next;
        std::thread::scope(|scope| {
            let workers: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(move || {
                        let mut done = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(job) = jobs.get(i) else { break };
                            done.push((i, run_member_outcome(trace, job.clone())));
                        }
                        done
                    })
                })
                .collect();
            for worker in workers {
                // A worker that dies wholesale (it shouldn't: every member
                // already runs inside its own panic boundary) loses only
                // the members it claimed; the survivors' results stand.
                if let Ok(done) = worker.join() {
                    for (i, outcome) in done {
                        results[i] = Some(outcome);
                    }
                }
            }
        });
        results
            .into_iter()
            .map(|slot| {
                slot.unwrap_or_else(|| MemberOutcome::Panicked {
                    payload: "sweep worker thread died before reporting this member".into(),
                })
            })
            .collect()
    }

    /// Records the shared products and flattens the members into
    /// standalone jobs for the parallel runners, running the
    /// shared-product integrity pre-check per member (a mismatch degrades
    /// that job to private live structures up front).
    pub(crate) fn into_parallel_jobs(mut self) -> (&'a CapturedTrace, Vec<ParallelJob>) {
        self.prepare_shared();
        let prepared: Vec<(SharedTables, Option<String>)> = self
            .members
            .iter()
            .map(|slot| {
                let tables = self.tables_for(&slot.config);
                let mut degraded = slot.degraded.clone();
                if degraded.is_none() {
                    if let Err(reason) = integrity_check(&slot.config, &tables) {
                        degraded = Some(reason);
                    }
                }
                if degraded.is_some() {
                    (self.private_tables(), degraded)
                } else {
                    (tables, degraded)
                }
            })
            .collect();
        let trace = self.trace;
        let faults = self.faults;
        let jobs = self
            .members
            .into_iter()
            .zip(prepared)
            .enumerate()
            .map(|(i, (slot, (tables, degraded)))| ParallelJob {
                config: *slot.config,
                tables,
                degraded,
                fault: faults.iter().find(|f| f.member == i).cloned(),
                done: match slot.state {
                    MemberState::Done(outcome) => Some(*outcome),
                    _ => None,
                },
            })
            .collect();
        (trace, jobs)
    }

    /// Advances member `i` until it has fetched `target` records,
    /// materializing its session on first schedule and retiring it to its
    /// outcome the moment it finishes. Panics anywhere in the member —
    /// session construction, the pipeline itself, an exhausted oracle, an
    /// injected fault — are caught at this boundary and turn into a
    /// degraded retry or a `Panicked` outcome, never into a torn-down
    /// sweep.
    fn advance(&mut self, i: usize, target: u64) {
        if matches!(self.members[i].state, MemberState::Pending) && !self.build_member(i) {
            return;
        }
        let fault = self.faults.iter().find(|f| f.member == i).cloned();
        let slot = &mut self.members[i];
        let MemberState::Active(session) = &mut slot.state else {
            unreachable!("the scheduler only advances unfinished members")
        };
        let result = catch_unwind(AssertUnwindSafe(|| {
            let more = session.advance_until_fetched(target);
            trip_fault(fault.as_ref(), session.stats().fetched_instrs);
            more
        }));
        match result {
            Ok(true) => {}
            Ok(false) => {
                let MemberState::Active(session) =
                    std::mem::replace(&mut slot.state, MemberState::Pending)
                else {
                    unreachable!("checked active above")
                };
                let outcome = classify(session.finish(), slot.degraded.take());
                slot.state = MemberState::Done(Box::new(outcome));
            }
            Err(payload) => self.fail_member(i, panic_payload(payload)),
        }
    }

    /// Materializes member `i`'s session, running the shared-product
    /// integrity pre-check and catching construction panics. Returns
    /// whether the member is now active.
    fn build_member(&mut self, i: usize) -> bool {
        let slot = &self.members[i];
        let mut degraded = slot.degraded.clone();
        let mut tables =
            if degraded.is_some() { self.private_tables() } else { self.tables_for(&slot.config) };
        if degraded.is_none() {
            if let Err(reason) = integrity_check(&slot.config, &tables) {
                degraded = Some(reason);
                tables = self.private_tables();
            }
        }
        let config = (*slot.config).clone();
        let trace = self.trace;
        let built = catch_unwind(AssertUnwindSafe(move || {
            Box::new(SimSession::with_shared_tables(config, trace.cursor(), tables))
        }));
        self.members[i].degraded = degraded;
        match built {
            Ok(session) => {
                self.members[i].state = MemberState::Active(session);
                true
            }
            Err(payload) => {
                self.fail_member(i, panic_payload(payload));
                false
            }
        }
    }

    /// Handles a caught member failure: the first one resets the member
    /// for a degraded retry from record 0 on private live structures; a
    /// second retires it as [`MemberOutcome::Panicked`].
    fn fail_member(&mut self, i: usize, reason: String) {
        let slot = &mut self.members[i];
        if slot.degraded.is_none() {
            slot.degraded = Some(reason);
            slot.state = MemberState::Pending;
        } else {
            slot.state = MemberState::Done(Box::new(MemberOutcome::Panicked { payload: reason }));
        }
    }
}

/// One data-side geometry group's share of a
/// [`SweepRunner::measure_dcache_qualification`] measurement: how many of
/// the group's members reproduced the group leader's exact data-access
/// stream (and would therefore replay a [`DcacheOracle`] recorded by the
/// leader without divergence).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DcacheGroupQualification {
    /// The data-side geometry the group agrees on.
    pub geometry: DmemGeometry,
    /// Total members in the group.
    pub members: usize,
    /// Members whose instrumented access-stream fingerprint matched the
    /// group leader's (the leader itself included, so a healthy group
    /// reports at least 1). Zero when the leader's own instrumented run
    /// failed.
    pub matching: usize,
}

/// Result of [`SweepRunner::measure_dcache_qualification`]: per-group
/// stream-agreement counts for every stock-model data-side geometry group
/// in the sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DcacheQualification {
    /// One entry per stock-model geometry group, in
    /// [`SweepRunner::dmem_geometry_groups`] order.
    pub groups: Vec<DcacheGroupQualification>,
}

impl DcacheQualification {
    /// Fraction of members (across groups with at least two members —
    /// singleton groups have nobody to share with, so they neither help
    /// nor hurt) that would replay their group's oracle without
    /// divergence. `1.0` when no group is shareable at all.
    #[must_use]
    pub fn qualification_rate(&self) -> f64 {
        let (mut matching, mut members) = (0usize, 0usize);
        for group in self.groups.iter().filter(|g| g.members >= 2) {
            matching += group.matching.min(group.members);
            members += group.members;
        }
        if members == 0 {
            1.0
        } else {
            matching as f64 / members as f64
        }
    }
}

/// One member of a parallel sweep: its configuration and product bundle,
/// detached from the runner so whatever thread picks it up owns it whole.
#[derive(Debug, Clone)]
pub(crate) struct ParallelJob {
    pub(crate) config: SimConfig,
    pub(crate) tables: SharedTables,
    /// Pre-run degradation (failed integrity check): the job starts on
    /// private live structures and reports [`MemberOutcome::Degraded`].
    pub(crate) degraded: Option<String>,
    /// Injected test fault, if any targets this member.
    pub(crate) fault: Option<FaultSpec>,
    /// The already-known outcome of a member restored from a checkpoint;
    /// passed through without re-running.
    pub(crate) done: Option<MemberOutcome>,
}

/// Cheap, deterministic pre-check that a member's shared products describe
/// the machine the member is configured as — the guard that matters when
/// products come from a [`RecordedOracles`] artifact rather than being
/// recorded under this sweep's own agreement policy. (The oracles' own
/// in-stream exhaustion asserts remain the backstop, caught at the member
/// panic boundary.)
fn integrity_check(config: &SimConfig, tables: &SharedTables) -> Result<(), String> {
    if let Some(oracle) = &tables.branches {
        if oracle.predictor() != config.predictor {
            return Err(
                "recorded branch oracle does not match the member's predictor configuration"
                    .to_string(),
            );
        }
    }
    if let Some(oracle) = &tables.icache {
        if oracle.geometry() != config.icache {
            return Err(
                "recorded I-cache oracle does not match the member's L1I geometry".to_string()
            );
        }
    }
    if let Some(oracle) = &tables.dvi {
        if oracle.config() != config.dvi {
            return Err(
                "recorded DVI oracle does not match the member's DVI configuration".to_string()
            );
        }
    }
    if let Some(oracle) = &tables.dcache {
        if oracle.geometry() != config.dcache || config.dcache_model != DcacheModelKind::Stock {
            return Err(
                "recorded D-cache oracle does not match the member's L1 data side".to_string()
            );
        }
    }
    if let Some(table) = &tables.fusion {
        if table.width() != config.decode_width {
            return Err("fusion table does not match the member's decode width".to_string());
        }
    }
    Ok(())
}

/// One member of a parallel sweep, run start to finish on whatever thread
/// picked it up, inside its own panic boundary: a panic on the primary
/// attempt triggers one degraded retry from record 0 on private live
/// structures, exactly like the serial scheduler's boundary.
pub(crate) fn run_member_outcome(trace: &CapturedTrace, job: ParallelJob) -> MemberOutcome {
    if let Some(done) = job.done {
        return done;
    }
    let ParallelJob { config, tables, degraded, fault, .. } = job;
    let decode = tables.decode.clone();
    match run_member_attempt(trace, config.clone(), tables, fault.as_ref()) {
        Ok(stats) => classify(stats, degraded),
        Err(reason) => {
            if degraded.is_some() {
                return MemberOutcome::Panicked { payload: reason };
            }
            let private = SharedTables { decode, ..SharedTables::default() };
            match run_member_attempt(trace, config, private, fault.as_ref()) {
                Ok(stats) => classify(stats, Some(reason)),
                Err(payload) => MemberOutcome::Panicked { payload },
            }
        }
    }
}

/// One complete run of one member under a panic boundary. The run is
/// chunked at [`RECORDS_PER_TURN`] with the fault hook checked between
/// chunks, mirroring the serial scheduler's turn boundary so an injected
/// fault fires at the same trace position on both paths.
fn run_member_attempt(
    trace: &CapturedTrace,
    config: SimConfig,
    tables: SharedTables,
    fault: Option<&FaultSpec>,
) -> Result<SimStats, String> {
    catch_unwind(AssertUnwindSafe(move || {
        let mut session = SimSession::with_shared_tables(config, trace.cursor(), tables);
        loop {
            let target = session.stats().fetched_instrs + RECORDS_PER_TURN;
            let more = session.advance_until_fetched(target);
            trip_fault(fault, session.stats().fetched_instrs);
            if !more {
                break;
            }
        }
        session.finish()
    }))
    .map_err(panic_payload)
}

/// Convenience wrapper: runs `configs` over `trace` in one batched pass
/// and returns the per-configuration statistics.
#[must_use]
pub fn sweep(trace: &CapturedTrace, configs: impl IntoIterator<Item = SimConfig>) -> Vec<SimStats> {
    SweepRunner::new(trace, configs).run()
}

/// Convenience wrapper: runs `configs` over `trace` with members
/// distributed across the host's cores ([`SweepRunner::run_parallel`]).
/// Statistics are bit-identical to [`sweep`].
#[must_use]
pub fn sweep_parallel(
    trace: &CapturedTrace,
    configs: impl IntoIterator<Item = SimConfig>,
) -> Vec<SimStats> {
    SweepRunner::new(trace, configs).run_parallel()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;
    use dvi_core::DviConfig;
    use dvi_isa::Abi;

    fn small_trace() -> CapturedTrace {
        let spec = dvi_workloads::WorkloadSpec::small("batch-unit", 7);
        let program = dvi_workloads::generate(&spec);
        let abi = Abi::mips_like();
        let compiled =
            dvi_compiler::compile(&program, &abi, dvi_compiler::CompileOptions::default())
                .expect("workload compiles");
        let layout = compiled.program.layout().expect("binary lays out");
        CapturedTrace::record(&layout, 8_000)
    }

    #[test]
    fn oracle_totals_match_cursor_at_end_of_trace() {
        let trace = small_trace();
        let oracle = Arc::new(BranchOracle::record(&trace, PredictorConfig::micro97()));
        assert!(!oracle.is_empty(), "the workload must contain branches");
        let mut cursor = OracleCursor::new(oracle.clone());
        for d in trace.cursor() {
            match d.instr {
                Instr::Branch { .. } => {
                    let _ = cursor.branch();
                }
                Instr::Return => {
                    let _ = cursor.ret();
                }
                _ => {}
            }
        }
        assert_eq!(cursor.stats(), oracle.totals());
    }

    #[test]
    fn empty_sweep_returns_no_stats() {
        let trace = small_trace();
        assert!(SweepRunner::new(&trace, []).is_empty());
        assert!(sweep(&trace, []).is_empty());
    }

    #[test]
    fn heterogeneous_predictors_fall_back_to_private_predictors() {
        let trace = small_trace();
        let configs = vec![
            SimConfig::micro97().with_dvi(DviConfig::full()),
            SimConfig {
                predictor: dvi_bpred::PredictorConfig::tiny(),
                ..SimConfig::micro97().with_dvi(DviConfig::full())
            },
        ];
        let batched = sweep(&trace, configs.clone());
        for (config, batched) in configs.into_iter().zip(&batched) {
            let serial = Simulator::new(config).run(trace.replay());
            assert_eq!(&serial, batched, "mixed-predictor batch must still be bit-identical");
            assert!(!batched.deadlocked);
        }
    }
}
