//! MIPS-R10000-style register renaming: alias table, free list, ready bits.

use dvi_isa::{ArchReg, NUM_ARCH_REGS};

/// A physical register name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysReg(pub u16);

/// Renaming state: the register alias table (RAT), the free list and the
/// per-physical-register ready bits.
///
/// At reset every architectural register is mapped to a distinct physical
/// register (all of them ready); the remaining physical registers populate
/// the free list. Destination renaming allocates from the free list and
/// records the previous mapping so it can be returned to the free list when
/// the renaming instruction commits — or earlier, when DVI unmaps the
/// architectural register ([`RenameState::unmap`]).
#[derive(Debug, Clone)]
pub struct RenameState {
    rat: [Option<PhysReg>; NUM_ARCH_REGS],
    free: Vec<PhysReg>,
    ready: Vec<bool>,
    /// One bit per physical register: whether it is currently on the free
    /// list. Makes the double-free check in [`RenameState::release`] O(1)
    /// instead of an O(free-list) scan.
    is_free: Vec<bool>,
    total: usize,
}

impl RenameState {
    /// Creates the reset state for a file of `phys_regs` physical registers.
    ///
    /// # Panics
    ///
    /// Panics if `phys_regs <= NUM_ARCH_REGS` (renaming would deadlock).
    #[must_use]
    pub fn new(phys_regs: usize) -> Self {
        assert!(phys_regs > NUM_ARCH_REGS, "physical register file too small");
        let mut rat = [None; NUM_ARCH_REGS];
        for (i, slot) in rat.iter_mut().enumerate() {
            *slot = Some(PhysReg(i as u16));
        }
        let free: Vec<PhysReg> = (NUM_ARCH_REGS..phys_regs).map(|i| PhysReg(i as u16)).collect();
        let mut is_free = vec![false; phys_regs];
        for p in &free {
            is_free[p.0 as usize] = true;
        }
        RenameState { rat, free, ready: vec![true; phys_regs], is_free, total: phys_regs }
    }

    /// Total physical registers.
    #[must_use]
    pub fn total(&self) -> usize {
        self.total
    }

    /// Physical registers currently on the free list.
    #[must_use]
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// The physical register currently holding `reg`, if any (dead,
    /// unmapped registers have no mapping).
    #[must_use]
    pub fn lookup(&self, reg: ArchReg) -> Option<PhysReg> {
        self.rat[reg.index()]
    }

    /// Whether the value in physical register `p` has been produced.
    #[must_use]
    pub fn is_ready(&self, p: PhysReg) -> bool {
        self.ready[p.0 as usize]
    }

    /// Marks physical register `p` as produced (at writeback).
    pub fn set_ready(&mut self, p: PhysReg) {
        self.ready[p.0 as usize] = true;
    }

    /// Renames the destination `reg`: allocates a physical register (marked
    /// not-ready), updates the alias table and returns
    /// `(new_phys, previous_mapping)`. Returns `None` when the free list is
    /// empty — the caller must stall rename.
    pub fn rename_dst(&mut self, reg: ArchReg) -> Option<(PhysReg, Option<PhysReg>)> {
        let new = self.free.pop()?;
        self.is_free[new.0 as usize] = false;
        self.ready[new.0 as usize] = false;
        let old = self.rat[reg.index()].replace(new);
        Some((new, old))
    }

    /// Removes the mapping of `reg` (the paper's "the architectural register
    /// is not mapped to any physical register" state) and returns the
    /// physical register that held it, if any. The caller frees it when the
    /// DVI-providing instruction commits.
    pub fn unmap(&mut self, reg: ArchReg) -> Option<PhysReg> {
        self.rat[reg.index()].take()
    }

    /// Returns a physical register to the free list.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the register is already free — a
    /// double-free indicates a bookkeeping bug.
    pub fn release(&mut self, p: PhysReg) {
        debug_assert!(!self.is_free[p.0 as usize], "physical register {p:?} freed twice");
        self.is_free[p.0 as usize] = true;
        self.ready[p.0 as usize] = true;
        self.free.push(p);
    }

    /// Number of physical registers currently holding architectural
    /// mappings.
    #[must_use]
    pub fn mapped_count(&self) -> usize {
        self.rat.iter().filter(|m| m.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn reset_state_maps_every_architectural_register() {
        let r = RenameState::new(80);
        assert_eq!(r.mapped_count(), NUM_ARCH_REGS);
        assert_eq!(r.free_count(), 80 - NUM_ARCH_REGS);
        for a in ArchReg::all() {
            let p = r.lookup(a).unwrap();
            assert!(r.is_ready(p));
        }
    }

    #[test]
    fn rename_allocates_and_records_the_old_mapping() {
        let mut r = RenameState::new(40);
        let a = ArchReg::new(8);
        let before = r.lookup(a).unwrap();
        let (new, old) = r.rename_dst(a).unwrap();
        assert_eq!(old, Some(before));
        assert_eq!(r.lookup(a), Some(new));
        assert!(!r.is_ready(new));
        r.set_ready(new);
        assert!(r.is_ready(new));
    }

    #[test]
    fn exhausting_the_free_list_stalls() {
        let mut r = RenameState::new(34);
        assert!(r.rename_dst(ArchReg::new(1)).is_some());
        assert!(r.rename_dst(ArchReg::new(2)).is_some());
        assert!(r.rename_dst(ArchReg::new(3)).is_none(), "only two spare registers exist");
    }

    #[test]
    fn unmap_then_release_makes_the_register_reusable() {
        let mut r = RenameState::new(34);
        let a = ArchReg::new(16);
        let p = r.unmap(a).unwrap();
        assert_eq!(r.lookup(a), None);
        assert_eq!(r.unmap(a), None, "already unmapped");
        r.release(p);
        assert_eq!(r.free_count(), 3);
        // The freed register can now serve a new rename.
        let (_new, old) = r.rename_dst(ArchReg::new(5)).unwrap();
        assert!(old.is_some());
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn undersized_file_is_rejected() {
        let _ = RenameState::new(32);
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "double-free check is a debug assertion")]
    #[should_panic(expected = "freed twice")]
    fn double_free_is_caught_in_constant_time() {
        let mut r = RenameState::new(34);
        let p = r.unmap(ArchReg::new(16)).unwrap();
        r.release(p);
        r.release(p);
    }

    proptest! {
        #[test]
        fn mapped_plus_free_plus_inflight_is_conserved(ops in proptest::collection::vec(0u8..32, 0..64)) {
            let mut r = RenameState::new(64);
            let mut inflight_old: Vec<PhysReg> = Vec::new();
            for dst in ops {
                if let Some((_new, old)) = r.rename_dst(ArchReg::new(dst)) {
                    if let Some(o) = old {
                        inflight_old.push(o);
                    }
                    // Commit the oldest outstanding rename half of the time
                    // to keep the free list from draining completely.
                    if inflight_old.len() > 4 {
                        let o = inflight_old.remove(0);
                        r.release(o);
                    }
                }
            }
            // Every physical register is either mapped, free, or held as an
            // old mapping by an in-flight instruction (dst of r0 renames are
            // still mapped; the conservation law must hold exactly).
            prop_assert_eq!(r.mapped_count() + r.free_count() + inflight_old.len(), 64);
        }
    }
}
