//! Resumable simulation sessions.
//!
//! [`SimSession`] replaces "construct a simulator, block until the trace
//! drains" with a compositional driving API: construct a session from a
//! [`SimConfig`] and any [`InstrSource`], advance it one cycle at a time
//! with [`SimSession::tick`], and read the final statistics with
//! [`SimSession::finish`]. A blocking run is just `while session.tick() {}`
//! — which is exactly what the retained [`crate::Simulator::run`]
//! convenience wrapper does — but because control returns to the caller
//! between cycles, sessions can also be *co-scheduled*: the batched
//! [`crate::batch::SweepRunner`] interleaves dozens of sessions over one
//! shared captured trace, something a run-to-completion API cannot express.

use crate::batch::SharedTables;
use crate::config::SimConfig;
use crate::pipeline::{Core, PROGRESS_LIMIT};
use crate::stats::{DeadlockReport, ProgressStage, SimStats};
use dvi_program::InstrSource;

/// A resumable timing simulation: one machine configuration consuming one
/// dynamic instruction source, advanced cycle by cycle under caller
/// control.
///
/// # Example
///
/// ```
/// use dvi_sim::{SimConfig, SimSession};
///
/// # let program = dvi_workloads::generate(&dvi_workloads::WorkloadSpec::small("doc", 2));
/// # let abi = dvi_isa::Abi::mips_like();
/// # let compiled =
/// #     dvi_compiler::compile(&program, &abi, dvi_compiler::CompileOptions::default()).unwrap();
/// # let layout = compiled.program.layout().unwrap();
/// let source = dvi_program::Interpreter::new(&layout).with_step_limit(5_000);
/// let mut session = SimSession::new(SimConfig::micro97(), source);
/// while session.tick() {
///     // Between cycles the caller owns control: inspect statistics,
///     // interleave other sessions, or stop early.
/// }
/// assert!(session.is_drained());
/// let stats = session.finish();
/// assert!(stats.ipc() > 0.0 && !stats.deadlocked);
/// ```
#[derive(Debug)]
pub struct SimSession<S> {
    core: Core,
    source: S,
    /// Forward-progress watchdog state: (cycle, committed) at the last
    /// cycle that committed an instruction.
    last_progress: (u64, u64),
    /// (cycle, fetched) at the last cycle fetch advanced — the watchdog's
    /// evidence for which stage was last alive ([`ProgressStage`]).
    last_fetch: (u64, u64),
    finished: bool,
}

impl<S: InstrSource> SimSession<S> {
    /// Builds a session for the given machine configuration and
    /// instruction source.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SimConfig::validate`].
    #[must_use]
    pub fn new(config: SimConfig, source: S) -> SimSession<S> {
        SimSession::from_core(Core::new(config), source)
    }

    /// Builds a session whose front and back end read shared, trace-pure
    /// products instead of private ones (see [`SharedTables`]): a
    /// precomputed [`crate::StaticDecodeTable`] in place of the
    /// lazily-filled decode memo, a [`crate::BranchOracle`] bitstream in
    /// place of a live branch predictor, an [`crate::IcacheOracle`]
    /// bitstream in place of the private L1I tag array, a
    /// [`dvi_program::DepGraph`] wiring dispatch directly to producer
    /// window entries in place of alias-table source renaming, a
    /// [`crate::DviOracle`] event stream in place of the live decode-stage
    /// DVI machinery, and/or a [`crate::DcacheOracle`] in place of the
    /// private L1D tag array (valid only for members that reproduce the
    /// recording member's exact data-access stream — the replay cursor
    /// checks every access and panics on divergence rather than replay
    /// wrong outcomes). All leave the modelled machine bit-identical;
    /// [`crate::batch::SweepRunner`] uses this to share the products
    /// across every member of a sweep.
    ///
    /// The dependence graph and DVI oracle must have been built from the
    /// same captured trace the session replays (their event streams are
    /// indexed by the trace's record sequence numbers).
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SimConfig::validate`], or if an
    /// oracle is supplied that was recorded under a different predictor
    /// configuration / L1I geometry / DVI configuration than `config`
    /// requests (its stream would describe a different machine).
    #[must_use]
    pub fn with_shared_tables(config: SimConfig, source: S, tables: SharedTables) -> SimSession<S> {
        if let Some(oracle) = &tables.branches {
            assert_eq!(
                oracle.predictor(),
                config.predictor,
                "branch oracle was recorded under a different predictor configuration"
            );
        }
        if let Some(oracle) = &tables.icache {
            assert_eq!(
                oracle.geometry(),
                config.icache,
                "I-cache oracle was recorded under a different L1I geometry"
            );
        }
        if let Some(oracle) = &tables.dvi {
            assert_eq!(
                oracle.config(),
                config.dvi,
                "DVI oracle was recorded under a different DVI configuration"
            );
        }
        if let Some(oracle) = &tables.dcache {
            assert_eq!(
                oracle.geometry(),
                config.dcache,
                "D-cache oracle was recorded under a different L1D geometry"
            );
            assert_eq!(
                config.dcache_model,
                crate::config::DcacheModelKind::Stock,
                "D-cache oracle replays a stock tag array; this member models a \
                 different L1 data side"
            );
        }
        if let Some(table) = &tables.fusion {
            assert_eq!(
                table.width(),
                config.decode_width,
                "fusion table was built for a different decode width \
                 (its group boundaries describe a different fetch grouping)"
            );
        }
        SimSession::from_core(Core::with_shared(config, tables), source)
    }

    /// Builds a session whose L1-data-side model is `dcache` instead of
    /// the tag array `config.dcache` describes (see
    /// [`dvi_mem::DataMemModel`] and
    /// [`dvi_mem::MemoryHierarchy::with_dcache_model`]). Shared tables
    /// compose with the substitution exactly as in
    /// [`SimSession::with_shared_tables`] (pass
    /// [`SharedTables::default`] for a fully private session).
    ///
    /// Substituting a model that makes the same hit/miss decisions (a
    /// fresh [`dvi_mem::CacheLevel`] of the member's own geometry, a
    /// [`dvi_mem::DcacheRecorder`]/[`dvi_mem::DcacheFingerprinter`]
    /// instrument, or a matching [`dvi_mem::DcacheOracleCursor`]) leaves
    /// the statistics bit-identical; any other model simulates a
    /// different machine on purpose (e.g. [`dvi_mem::PerfectDcache`] for
    /// an upper-bound run). An explicit model here wins over a D-cache
    /// oracle in `tables`.
    ///
    /// # Panics
    ///
    /// As [`SimSession::with_shared_tables`].
    #[must_use]
    pub fn with_dcache_model(
        config: SimConfig,
        source: S,
        tables: SharedTables,
        dcache: Box<dyn dvi_mem::DataMemModel>,
    ) -> SimSession<S> {
        SimSession::from_core(Core::with_shared_and_dcache(config, tables, Some(dcache)), source)
    }

    fn from_core(core: Core, source: S) -> SimSession<S> {
        SimSession { core, source, last_progress: (0, 0), last_fetch: (0, 0), finished: false }
    }

    /// Advances the machine one cycle; returns `true` while there is more
    /// work to do.
    ///
    /// Returns `false` — permanently — once the source is exhausted and
    /// the pipeline has drained, or once the forward-progress watchdog
    /// fires (no commit for `PROGRESS_LIMIT` cycles, a modelling bug
    /// surfaced as [`SimStats::deadlocked`] with a structured
    /// [`DeadlockReport`] attached). Further calls are no-ops.
    pub fn tick(&mut self) -> bool {
        if self.finished {
            return false;
        }
        self.core.step(&mut self.source);
        if self.core.at_drain() {
            self.core.release_at_drain();
            self.finished = true;
            return false;
        }
        if self.core.stats.fetched_instrs != self.last_fetch.1 {
            self.last_fetch = (self.core.cycle, self.core.stats.fetched_instrs);
        }
        if self.core.stats.committed_entries != self.last_progress.1 {
            self.last_progress = (self.core.cycle, self.core.stats.committed_entries);
        } else if self.core.cycle - self.last_progress.0 > PROGRESS_LIMIT {
            // The watchdog's finding is *returned*, not asserted: one
            // wedged sweep member must surface as a diagnosable outcome,
            // not abort its siblings.
            let last_stage = if self.last_fetch.0 > self.last_progress.0 {
                ProgressStage::Fetch
            } else {
                ProgressStage::Commit
            };
            self.core.stats.deadlocked = true;
            self.core.stats.deadlock = Some(DeadlockReport {
                stall_cycle: self.last_progress.0,
                detected_cycle: self.core.cycle,
                window_occupancy: self.core.window_occupancy(),
                head_seq: self.core.head_record_seq(),
                last_stage,
            });
            self.finished = true;
            return false;
        }
        true
    }

    /// Whether the session has nothing left to do: the source is exhausted
    /// and every in-flight instruction has committed (or the deadlock
    /// watchdog aborted the run — distinguishable via
    /// [`SimStats::deadlocked`] on the finished statistics).
    #[must_use]
    pub fn is_drained(&self) -> bool {
        self.finished
    }

    /// Cycles simulated so far.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.core.cycle
    }

    /// The statistics accumulated so far. Totals drawn from subsystems
    /// (DVI engine, predictor, caches) are folded in by
    /// [`SimSession::finish`]; the per-pipeline counters here (committed
    /// instructions, fetched instructions, stalls) are live.
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        &self.core.stats
    }

    /// Consumes the session and returns the full statistics. Normally
    /// called once [`SimSession::tick`] has returned `false`; calling it
    /// earlier returns the statistics of the partial run so far.
    #[must_use]
    pub fn finish(self) -> SimStats {
        self.core.finalize()
    }

    /// Advances the session until it has fetched at least `target` source
    /// records (or finished); returns `true` while the session can still
    /// make progress. The batched sweep runner uses this to advance one
    /// member through its turn without paying a cross-module call per
    /// cycle.
    pub fn advance_until_fetched(&mut self, target: u64) -> bool {
        while self.core.stats.fetched_instrs < target {
            if !self.tick() {
                return false;
            }
        }
        true
    }

    /// Drives the session to completion and returns the statistics — the
    /// blocking shorthand `Simulator::run` is built on.
    #[must_use]
    pub fn run_to_completion(mut self) -> SimStats {
        while self.tick() {}
        self.finish()
    }
}
