//! Machine configuration (the paper's Figure 2).

use dvi_bpred::PredictorConfig;
use dvi_core::DviConfig;
use dvi_mem::CacheConfig;

/// Which wakeup/select implementation the simulator uses. Both model the
/// same machine cycle-for-cycle; they differ only in host-time complexity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// Event-driven: completion calendar, per-register waiter lists and an
    /// O(1) ready queue (see [`crate::sched`] for the structures and the
    /// equivalence argument). The default.
    #[default]
    EventDriven,
    /// The reference model: rescan the full instruction window every cycle
    /// for writeback and issue. O(window) per cycle, kept for golden-stats
    /// regression tests and as the throughput-comparison baseline.
    NaiveScan,
}

/// Configuration of the simulated machine.
///
/// [`SimConfig::micro97`] reproduces Figure 2: 4-wide issue, a 64-entry
/// instruction window, 4 integer units (2 of which multiply/divide), 2
/// fully-independent cache ports, 64KB 4-way L1 caches with 1-cycle latency,
/// a 512KB 4-way L2 with 8-cycle latency, and a 16-bit-history combining
/// gshare/bimodal predictor with a BTB.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Instructions fetched and decoded per cycle.
    pub fetch_width: usize,
    /// Instructions renamed/dispatched per cycle.
    pub decode_width: usize,
    /// Instructions issued to functional units per cycle.
    pub issue_width: usize,
    /// Instructions committed per cycle.
    pub commit_width: usize,
    /// Instruction-window (reorder buffer) entries.
    pub window_size: usize,
    /// Fetch-queue entries between fetch and rename.
    pub fetch_queue: usize,
    /// Number of physical integer registers.
    pub phys_regs: usize,
    /// Simple integer ALUs.
    pub int_alu_units: usize,
    /// Integer multiply/divide units.
    pub int_mul_units: usize,
    /// Data-cache ports (fully independent / replicated).
    pub cache_ports: usize,
    /// Additional front-end refill cycles charged after a branch
    /// misprediction resolves.
    pub mispredict_penalty: u64,
    /// L1 instruction cache geometry.
    pub icache: CacheConfig,
    /// L1 data cache geometry.
    pub dcache: CacheConfig,
    /// Unified L2 geometry.
    pub l2: CacheConfig,
    /// Main-memory latency in cycles.
    pub memory_latency: u64,
    /// Branch predictor configuration.
    pub predictor: PredictorConfig,
    /// DVI sources and optimizations.
    pub dvi: DviConfig,
    /// Wakeup/select implementation (identical timing, different host
    /// speed).
    pub scheduler: SchedulerKind,
}

impl SimConfig {
    /// The machine of Figure 2, with no DVI and a generously sized physical
    /// register file (80 registers, in the range the paper describes as
    /// typical for then-current processors).
    #[must_use]
    pub fn micro97() -> Self {
        SimConfig {
            fetch_width: 4,
            decode_width: 4,
            issue_width: 4,
            commit_width: 4,
            window_size: 64,
            fetch_queue: 16,
            phys_regs: 80,
            int_alu_units: 4,
            int_mul_units: 2,
            cache_ports: 2,
            mispredict_penalty: 3,
            icache: CacheConfig::micro97_l1i(),
            dcache: CacheConfig::micro97_l1d(),
            l2: CacheConfig::micro97_l2(),
            memory_latency: 50,
            predictor: PredictorConfig::micro97(),
            dvi: DviConfig::none(),
            scheduler: SchedulerKind::default(),
        }
    }

    /// The Figure 13 variant with a 32KB instruction cache.
    #[must_use]
    pub fn micro97_small_icache() -> Self {
        SimConfig { icache: CacheConfig::micro97_l1i_32k(), ..SimConfig::micro97() }
    }

    /// Returns a copy with a different physical register file size.
    ///
    /// # Panics
    ///
    /// Panics if `n` is smaller than the architectural register count plus
    /// one (renaming would deadlock; the paper's sweeps start at 34).
    #[must_use]
    pub fn with_phys_regs(mut self, n: usize) -> Self {
        assert!(
            n > dvi_isa::NUM_ARCH_REGS,
            "at least {} physical registers are needed to avoid renaming deadlock",
            dvi_isa::NUM_ARCH_REGS + 1
        );
        self.phys_regs = n;
        self
    }

    /// Returns a copy with a different DVI configuration.
    #[must_use]
    pub fn with_dvi(mut self, dvi: DviConfig) -> Self {
        self.dvi = dvi;
        self
    }

    /// Returns a copy using the given wakeup/select implementation.
    #[must_use]
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Returns a copy with a different number of data-cache ports
    /// (Figure 11's sweep).
    ///
    /// # Panics
    ///
    /// Panics if `ports` is zero.
    #[must_use]
    pub fn with_cache_ports(mut self, ports: usize) -> Self {
        assert!(ports > 0, "the machine needs at least one cache port");
        self.cache_ports = ports;
        self
    }

    /// Returns a copy scaled to a different issue width: fetch, decode,
    /// issue and commit widths follow, and the functional-unit counts scale
    /// proportionally (Figure 11 compares 4-way and 8-way machines).
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    #[must_use]
    pub fn with_issue_width(mut self, width: usize) -> Self {
        assert!(width > 0, "issue width must be at least one");
        let scale = |units: usize| (units * width).div_ceil(4).max(1);
        self.int_alu_units = scale(self.int_alu_units);
        self.int_mul_units = scale(self.int_mul_units);
        self.fetch_width = width;
        self.decode_width = width;
        self.issue_width = width;
        self.commit_width = width;
        self.window_size = self.window_size * width / 4;
        self.fetch_queue = self.fetch_queue * width / 4;
        self
    }

    /// Validates the structural parameters.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configurations (zero widths or empty window).
    pub fn validate(&self) {
        assert!(self.fetch_width > 0 && self.decode_width > 0, "front-end widths must be non-zero");
        assert!(self.issue_width > 0 && self.commit_width > 0, "back-end widths must be non-zero");
        assert!(self.window_size > 0, "instruction window must be non-empty");
        assert!(self.fetch_queue > 0, "fetch queue must be non-empty");
        assert!(self.phys_regs > dvi_isa::NUM_ARCH_REGS, "physical register file too small");
        assert!(self.int_alu_units > 0, "need at least one integer unit");
        assert!(self.cache_ports > 0, "need at least one cache port");
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::micro97()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_parameters() {
        let c = SimConfig::micro97();
        c.validate();
        assert_eq!(c.issue_width, 4);
        assert_eq!(c.window_size, 64);
        assert_eq!(c.int_alu_units, 4);
        assert_eq!(c.int_mul_units, 2);
        assert_eq!(c.cache_ports, 2);
        assert_eq!(c.icache.size_bytes, 64 * 1024);
        assert_eq!(c.l2.size_bytes, 512 * 1024);
        assert_eq!(c.predictor.history_bits, 16);
        assert!(!c.dvi.tracks_dvi());
    }

    #[test]
    fn builders_adjust_the_right_fields() {
        let c = SimConfig::micro97()
            .with_phys_regs(48)
            .with_cache_ports(3)
            .with_dvi(dvi_core::DviConfig::full());
        assert_eq!(c.phys_regs, 48);
        assert_eq!(c.cache_ports, 3);
        assert!(c.dvi.use_edvi);
    }

    #[test]
    fn issue_width_scaling_scales_the_back_end() {
        let c = SimConfig::micro97().with_issue_width(8);
        c.validate();
        assert_eq!(c.fetch_width, 8);
        assert_eq!(c.int_alu_units, 8);
        assert_eq!(c.int_mul_units, 4);
        assert_eq!(c.window_size, 128);
    }

    #[test]
    fn small_icache_variant_only_changes_the_icache() {
        let c = SimConfig::micro97_small_icache();
        assert_eq!(c.icache.size_bytes, 32 * 1024);
        assert_eq!(c.dcache.size_bytes, 64 * 1024);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn too_few_physical_registers_is_rejected() {
        let _ = SimConfig::micro97().with_phys_regs(32);
    }
}
