//! Machine configuration (the paper's Figure 2).

use dvi_bpred::PredictorConfig;
use dvi_core::DviConfig;
use dvi_mem::CacheConfig;
use std::fmt;

/// A structural defect in a [`SimConfig`], reported by
/// [`SimConfig::check`] before any simulator state is built — instead of
/// a panic from deep inside the first run that trips over it.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// A pipeline width (fetch/decode/issue/commit) is zero.
    ZeroWidth {
        /// Which width field is zero.
        stage: &'static str,
    },
    /// The instruction window has no entries.
    EmptyWindow,
    /// The window cannot feed the configured issue width
    /// (`window_size < issue_width` caps sustained IPC below the
    /// machine's nominal width — always a configuration mistake).
    WindowSmallerThanWidth {
        /// Configured window entries.
        window: usize,
        /// Configured issue width.
        width: usize,
    },
    /// The fetch queue has no entries.
    EmptyFetchQueue,
    /// The physical register file cannot rename (`phys_regs` must exceed
    /// the architectural register count or renaming deadlocks).
    TooFewPhysRegs {
        /// Configured physical registers.
        given: usize,
        /// Smallest viable file (architectural registers + 1).
        minimum: usize,
    },
    /// No integer ALU is configured.
    NoFunctionalUnits,
    /// No data-cache port is configured.
    NoCachePorts,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroWidth { stage } => {
                write!(f, "{stage} width must be non-zero")
            }
            ConfigError::EmptyWindow => write!(f, "instruction window must be non-empty"),
            ConfigError::WindowSmallerThanWidth { window, width } => write!(
                f,
                "instruction window ({window} entries) is smaller than the issue width \
                 ({width}): the machine could never sustain its nominal width"
            ),
            ConfigError::EmptyFetchQueue => write!(f, "fetch queue must be non-empty"),
            ConfigError::TooFewPhysRegs { given, minimum } => write!(
                f,
                "physical register file too small: {given} registers cannot rename \
                 (need at least {minimum} to avoid renaming deadlock)"
            ),
            ConfigError::NoFunctionalUnits => write!(f, "need at least one integer unit"),
            ConfigError::NoCachePorts => write!(f, "need at least one cache port"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Which model stands behind the L1-data-side seam
/// ([`SimConfig::dcache_model`]). Distinct kinds model distinct machines,
/// so the grouping key for sharing a recorded D-cache product must carry
/// the kind, not just the tag-array geometry: a [`DcacheModelKind::Perfect`]
/// member of the same shape makes different hit/miss decisions than a stock
/// member and can never share its recording.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DcacheModelKind {
    /// The stock set-associative L1D tag array of
    /// [`SimConfig::dcache`]'s geometry. The default, and the only kind a
    /// D-cache oracle can be recorded for.
    #[default]
    Stock,
    /// An always-hit L1D at the configured hit latency
    /// ([`dvi_mem::PerfectDcache`]) — the data-side upper-bound machine.
    Perfect,
}

/// The data-side axes of a machine ([`SimConfig::dmem_geometry`]): the
/// L1D model kind and geometry, unified-L2 geometry and main-memory
/// latency. Members of a sweep that agree on all four make identical L1D
/// hit/miss decisions for identical access sequences — the precondition
/// for sharing a recorded D-cache product between them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmemGeometry {
    /// L1 data-side model kind.
    pub model: DcacheModelKind,
    /// L1 data cache geometry.
    pub dcache: CacheConfig,
    /// Unified L2 geometry.
    pub l2: CacheConfig,
    /// Main-memory latency in cycles.
    pub memory_latency: u64,
}

/// Which wakeup/select implementation the simulator uses. Both model the
/// same machine cycle-for-cycle; they differ only in host-time complexity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// Event-driven: completion calendar, per-register waiter lists and an
    /// O(1) ready queue (see [`crate::sched`] for the structures and the
    /// equivalence argument). The default.
    #[default]
    EventDriven,
    /// The reference model: rescan the full instruction window every cycle
    /// for writeback and issue. O(window) per cycle, kept for golden-stats
    /// regression tests and as the throughput-comparison baseline.
    NaiveScan,
}

/// Configuration of the simulated machine.
///
/// [`SimConfig::micro97`] reproduces Figure 2: 4-wide issue, a 64-entry
/// instruction window, 4 integer units (2 of which multiply/divide), 2
/// fully-independent cache ports, 64KB 4-way L1 caches with 1-cycle latency,
/// a 512KB 4-way L2 with 8-cycle latency, and a 16-bit-history combining
/// gshare/bimodal predictor with a BTB.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Instructions fetched and decoded per cycle.
    pub fetch_width: usize,
    /// Instructions renamed/dispatched per cycle.
    pub decode_width: usize,
    /// Instructions issued to functional units per cycle.
    pub issue_width: usize,
    /// Instructions committed per cycle.
    pub commit_width: usize,
    /// Instruction-window (reorder buffer) entries.
    pub window_size: usize,
    /// Fetch-queue entries between fetch and rename.
    pub fetch_queue: usize,
    /// Number of physical integer registers.
    pub phys_regs: usize,
    /// Simple integer ALUs.
    pub int_alu_units: usize,
    /// Integer multiply/divide units.
    pub int_mul_units: usize,
    /// Data-cache ports (fully independent / replicated).
    pub cache_ports: usize,
    /// Additional front-end refill cycles charged after a branch
    /// misprediction resolves.
    pub mispredict_penalty: u64,
    /// L1 instruction cache geometry.
    pub icache: CacheConfig,
    /// L1 data cache geometry.
    pub dcache: CacheConfig,
    /// Which model stands behind the L1-data-side seam (stock tag array
    /// by default; [`DcacheModelKind::Perfect`] models the always-hit
    /// upper-bound machine).
    pub dcache_model: DcacheModelKind,
    /// Unified L2 geometry.
    pub l2: CacheConfig,
    /// Main-memory latency in cycles.
    pub memory_latency: u64,
    /// Branch predictor configuration.
    pub predictor: PredictorConfig,
    /// DVI sources and optimizations.
    pub dvi: DviConfig,
    /// Wakeup/select implementation (identical timing, different host
    /// speed).
    pub scheduler: SchedulerKind,
}

impl SimConfig {
    /// The machine of Figure 2, with no DVI and a generously sized physical
    /// register file (80 registers, in the range the paper describes as
    /// typical for then-current processors).
    #[must_use]
    pub fn micro97() -> Self {
        SimConfig {
            fetch_width: 4,
            decode_width: 4,
            issue_width: 4,
            commit_width: 4,
            window_size: 64,
            fetch_queue: 16,
            phys_regs: 80,
            int_alu_units: 4,
            int_mul_units: 2,
            cache_ports: 2,
            mispredict_penalty: 3,
            icache: CacheConfig::micro97_l1i(),
            dcache: CacheConfig::micro97_l1d(),
            dcache_model: DcacheModelKind::Stock,
            l2: CacheConfig::micro97_l2(),
            memory_latency: 50,
            predictor: PredictorConfig::micro97(),
            dvi: DviConfig::none(),
            scheduler: SchedulerKind::default(),
        }
    }

    /// The Figure 13 variant with a 32KB instruction cache.
    #[must_use]
    pub fn micro97_small_icache() -> Self {
        SimConfig { icache: CacheConfig::micro97_l1i_32k(), ..SimConfig::micro97() }
    }

    /// Returns a copy with a different physical register file size.
    ///
    /// # Panics
    ///
    /// Panics if `n` is smaller than the architectural register count plus
    /// one (renaming would deadlock; the paper's sweeps start at 34).
    #[must_use]
    pub fn with_phys_regs(mut self, n: usize) -> Self {
        assert!(
            n > dvi_isa::NUM_ARCH_REGS,
            "at least {} physical registers are needed to avoid renaming deadlock",
            dvi_isa::NUM_ARCH_REGS + 1
        );
        self.phys_regs = n;
        self
    }

    /// Returns a copy with a different DVI configuration.
    #[must_use]
    pub fn with_dvi(mut self, dvi: DviConfig) -> Self {
        self.dvi = dvi;
        self
    }

    /// Returns a copy using the given wakeup/select implementation.
    #[must_use]
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Returns a copy whose L1 data side always hits at the configured
    /// L1D latency ([`DcacheModelKind::Perfect`]) — the data-side
    /// upper-bound machine. Such a member never shares a D-cache oracle
    /// with stock members of the same shape.
    #[must_use]
    pub fn with_perfect_dcache(mut self) -> Self {
        self.dcache_model = DcacheModelKind::Perfect;
        self
    }

    /// Returns a copy with a different number of data-cache ports
    /// (Figure 11's sweep).
    ///
    /// # Panics
    ///
    /// Panics if `ports` is zero.
    #[must_use]
    pub fn with_cache_ports(mut self, ports: usize) -> Self {
        assert!(ports > 0, "the machine needs at least one cache port");
        self.cache_ports = ports;
        self
    }

    /// Returns a copy scaled to a different issue width: fetch, decode,
    /// issue and commit widths follow, and the functional-unit counts scale
    /// proportionally (Figure 11 compares 4-way and 8-way machines).
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    #[must_use]
    pub fn with_issue_width(mut self, width: usize) -> Self {
        assert!(width > 0, "issue width must be at least one");
        let scale = |units: usize| (units * width).div_ceil(4).max(1);
        self.int_alu_units = scale(self.int_alu_units);
        self.int_mul_units = scale(self.int_mul_units);
        self.fetch_width = width;
        self.decode_width = width;
        self.issue_width = width;
        self.commit_width = width;
        self.window_size = self.window_size * width / 4;
        self.fetch_queue = self.fetch_queue * width / 4;
        self
    }

    /// The data-side axes of this machine: what two sweep members must
    /// agree on for their L1-data-side behaviour to be interchangeable.
    /// This is the grouping key the shared D-cache oracle is recorded
    /// under (the data-side analogue of [`crate::batch::IcacheOracle`]'s
    /// L1I-geometry agreement rule); see
    /// [`crate::batch::SweepRunner::dmem_geometry_groups`]. The key
    /// carries the model kind, not just the shape: a perfect-D-cache
    /// member makes different hit/miss decisions than a stock member of
    /// identical geometry.
    #[must_use]
    pub fn dmem_geometry(&self) -> DmemGeometry {
        DmemGeometry {
            model: self.dcache_model,
            dcache: self.dcache,
            l2: self.l2,
            memory_latency: self.memory_latency,
        }
    }

    /// Checks the structural parameters, returning the first defect as a
    /// descriptive [`ConfigError`] — the fallible twin of
    /// [`SimConfig::validate`] for callers assembling configurations from
    /// external input (sweep grids, CLI flags) who want an error value
    /// instead of a downstream panic.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found: a zero pipeline width, an
    /// empty window or fetch queue, a window smaller than the issue
    /// width, an unrenamable register file, or a machine with no integer
    /// unit / no cache port.
    pub fn check(&self) -> Result<(), ConfigError> {
        for (stage, width) in [
            ("fetch", self.fetch_width),
            ("decode", self.decode_width),
            ("issue", self.issue_width),
            ("commit", self.commit_width),
        ] {
            if width == 0 {
                return Err(ConfigError::ZeroWidth { stage });
            }
        }
        if self.window_size == 0 {
            return Err(ConfigError::EmptyWindow);
        }
        if self.window_size < self.issue_width {
            return Err(ConfigError::WindowSmallerThanWidth {
                window: self.window_size,
                width: self.issue_width,
            });
        }
        if self.fetch_queue == 0 {
            return Err(ConfigError::EmptyFetchQueue);
        }
        if self.phys_regs <= dvi_isa::NUM_ARCH_REGS {
            return Err(ConfigError::TooFewPhysRegs {
                given: self.phys_regs,
                minimum: dvi_isa::NUM_ARCH_REGS + 1,
            });
        }
        if self.int_alu_units == 0 {
            return Err(ConfigError::NoFunctionalUnits);
        }
        if self.cache_ports == 0 {
            return Err(ConfigError::NoCachePorts);
        }
        Ok(())
    }

    /// Validates the structural parameters (the panicking form of
    /// [`SimConfig::check`], used by the simulator constructors).
    ///
    /// # Panics
    ///
    /// Panics with the [`ConfigError`] description on degenerate
    /// configurations.
    pub fn validate(&self) {
        if let Err(defect) = self.check() {
            panic!("invalid machine configuration: {defect}");
        }
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::micro97()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_parameters() {
        let c = SimConfig::micro97();
        c.validate();
        assert_eq!(c.issue_width, 4);
        assert_eq!(c.window_size, 64);
        assert_eq!(c.int_alu_units, 4);
        assert_eq!(c.int_mul_units, 2);
        assert_eq!(c.cache_ports, 2);
        assert_eq!(c.icache.size_bytes, 64 * 1024);
        assert_eq!(c.l2.size_bytes, 512 * 1024);
        assert_eq!(c.predictor.history_bits, 16);
        assert!(!c.dvi.tracks_dvi());
    }

    #[test]
    fn builders_adjust_the_right_fields() {
        let c = SimConfig::micro97()
            .with_phys_regs(48)
            .with_cache_ports(3)
            .with_dvi(dvi_core::DviConfig::full());
        assert_eq!(c.phys_regs, 48);
        assert_eq!(c.cache_ports, 3);
        assert!(c.dvi.use_edvi);
    }

    #[test]
    fn issue_width_scaling_scales_the_back_end() {
        let c = SimConfig::micro97().with_issue_width(8);
        c.validate();
        assert_eq!(c.fetch_width, 8);
        assert_eq!(c.int_alu_units, 8);
        assert_eq!(c.int_mul_units, 4);
        assert_eq!(c.window_size, 128);
    }

    #[test]
    fn small_icache_variant_only_changes_the_icache() {
        let c = SimConfig::micro97_small_icache();
        assert_eq!(c.icache.size_bytes, 32 * 1024);
        assert_eq!(c.dcache.size_bytes, 64 * 1024);
    }

    #[test]
    fn perfect_dcache_changes_the_dmem_grouping_key() {
        let stock = SimConfig::micro97();
        let perfect = SimConfig::micro97().with_perfect_dcache();
        assert_eq!(stock.dcache_model, DcacheModelKind::Stock);
        assert_eq!(perfect.dcache_model, DcacheModelKind::Perfect);
        assert_eq!(perfect.dcache, stock.dcache, "geometry itself is untouched");
        assert_ne!(
            stock.dmem_geometry(),
            perfect.dmem_geometry(),
            "same shape, different model: must never share a D-cache recording"
        );
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn too_few_physical_registers_is_rejected() {
        let _ = SimConfig::micro97().with_phys_regs(32);
    }

    #[test]
    fn check_accepts_every_stock_machine() {
        for config in [
            SimConfig::micro97(),
            SimConfig::micro97_small_icache(),
            SimConfig::micro97().with_issue_width(1),
            SimConfig::micro97().with_issue_width(16).with_phys_regs(320),
        ] {
            assert_eq!(config.check(), Ok(()), "stock machine rejected");
        }
    }

    #[test]
    fn check_rejects_zero_widths_with_the_offending_stage() {
        let zero_fetch = SimConfig { fetch_width: 0, ..SimConfig::micro97() };
        assert_eq!(zero_fetch.check(), Err(ConfigError::ZeroWidth { stage: "fetch" }));
        let zero_issue = SimConfig { issue_width: 0, ..SimConfig::micro97() };
        assert_eq!(zero_issue.check(), Err(ConfigError::ZeroWidth { stage: "issue" }));
        let zero_commit = SimConfig { commit_width: 0, ..SimConfig::micro97() };
        assert!(matches!(zero_commit.check(), Err(ConfigError::ZeroWidth { stage: "commit" })));
    }

    #[test]
    fn check_rejects_degenerate_structures() {
        let no_window = SimConfig { window_size: 0, ..SimConfig::micro97() };
        assert_eq!(no_window.check(), Err(ConfigError::EmptyWindow));
        let tiny_window = SimConfig { window_size: 2, ..SimConfig::micro97() };
        assert_eq!(
            tiny_window.check(),
            Err(ConfigError::WindowSmallerThanWidth { window: 2, width: 4 })
        );
        let no_queue = SimConfig { fetch_queue: 0, ..SimConfig::micro97() };
        assert_eq!(no_queue.check(), Err(ConfigError::EmptyFetchQueue));
        let no_alu = SimConfig { int_alu_units: 0, ..SimConfig::micro97() };
        assert_eq!(no_alu.check(), Err(ConfigError::NoFunctionalUnits));
        let no_ports = SimConfig { cache_ports: 0, ..SimConfig::micro97() };
        assert_eq!(no_ports.check(), Err(ConfigError::NoCachePorts));
    }

    #[test]
    fn check_rejects_unrenamable_register_files_descriptively() {
        let cramped = SimConfig { phys_regs: dvi_isa::NUM_ARCH_REGS, ..SimConfig::micro97() };
        let err = cramped.check().unwrap_err();
        assert_eq!(
            err,
            ConfigError::TooFewPhysRegs {
                given: dvi_isa::NUM_ARCH_REGS,
                minimum: dvi_isa::NUM_ARCH_REGS + 1
            }
        );
        let text = err.to_string();
        assert!(text.contains("deadlock"), "error must explain the consequence: {text}");
        assert!(text.contains(&dvi_isa::NUM_ARCH_REGS.to_string()));
    }

    #[test]
    #[should_panic(expected = "smaller than the issue width")]
    fn validate_panics_with_the_check_description() {
        SimConfig { window_size: 3, ..SimConfig::micro97() }.validate();
    }
}
