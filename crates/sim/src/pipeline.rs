//! The out-of-order pipeline model.
//!
//! # Scheduling
//!
//! The simulator models a classic out-of-order core: in-order fetch →
//! rename/dispatch into a unified instruction window → out-of-order
//! wakeup/select → in-order commit. Two interchangeable wakeup/select
//! implementations are provided (selected by [`SchedulerKind`]):
//!
//! * **Event-driven** (the default): writeback drains a completion
//!   calendar bucket (only the instructions finishing *this* cycle),
//!   wakeup walks the per-physical-register waiter list of each result
//!   (only the consumers of that result), and select scans an age-ordered
//!   ready bitset (only instructions whose operands are all available).
//!   Cycles where nothing completes and nothing is ready cost O(1) in the
//!   back end. The structures and the cycle-accuracy argument live in
//!   [`crate::sched`].
//! * **Naive scan**: the original model — writeback and issue rescan the
//!   entire window every cycle. Kept as the reference implementation; the
//!   golden-stats and property tests assert the two produce bit-identical
//!   [`SimStats`], and the `sim_throughput` bench measures the speedup.
//!
//! Both backends share fetch, rename/dispatch, commit, the DVI engine, the
//! branch predictor and the memory hierarchy, so they cannot drift in
//! front-end or retirement behaviour; only writeback/wakeup/select differ.
//!
//! # Data layout
//!
//! The per-cycle stages run over the *structure-of-arrays* instruction
//! window ([`crate::window`]): every stage loop reads exactly the packed
//! arrays it needs (commit: the `done` flags and `old_dst`; writeback:
//! `done`/`dst`; select: `class` and, for memory operations, the
//! effective address) instead of loading ~80-byte entry structs, and the
//! window's `done` flag array doubles as the completion set the
//! dependence-graph wiring probes — the back end keeps no second copy of
//! any per-entry fact. The modelled machine is unchanged: all
//! equivalence suites (`scheduler_equiv`, `replay_equiv`, `batch_equiv`,
//! `depgraph_equiv`) and the golden figures lock the statistics
//! bit-for-bit.

use crate::batch::{DviCursor, IcacheCursor, OracleCursor, SharedTables};
use crate::config::{DcacheModelKind, SchedulerKind, SimConfig};
use crate::dvi_engine::{DviEngine, DviModel};
use crate::frontend::{Dispatch, FetchPredictor, FrontEnd};
use crate::fu::FuPool;
use crate::rename::RenameState;
use crate::sched::{Calendar, ReadyRing, Waiters};
use crate::session::SimSession;
use crate::stats::SimStats;
use crate::window::{EntryState, WindowRing};
use dvi_isa::{Abi, ArchReg, FuKind, InstrClass};
use dvi_mem::{CachePorts, DataMemModel, DcacheOracleCursor, MemoryHierarchy, PerfectDcache};
use dvi_program::fusion::{fusion_flag, FusionTable};
use dvi_program::{DepGraph, DynInst, InstrSource};
use std::sync::Arc;

/// Safety valve: if the pipeline makes no forward progress for this many
/// cycles, the run is aborted with [`SimStats::deadlocked`] set (this
/// indicates a modelling bug, not a property of the workload).
pub(crate) const PROGRESS_LIMIT: u64 = 100_000;

/// The blocking convenience wrapper over [`SimSession`].
///
/// See the crate-level documentation for the modelling assumptions. A
/// `Simulator` is single-use: construct it with a [`SimConfig`], call
/// [`Simulator::run`] with a dynamic instruction stream (usually a
/// [`dvi_program::Interpreter`] or a [`dvi_program::TraceCursor`]) and
/// read the returned [`SimStats`]. For cycle-at-a-time control — or to
/// co-schedule many configurations over one shared trace — drive a
/// [`SimSession`] (or [`crate::batch::SweepRunner`]) directly; `run` is
/// exactly `SimSession::new(config, trace).run_to_completion()`.
#[derive(Debug)]
pub struct Simulator {
    config: SimConfig,
}

impl Simulator {
    /// Builds a simulator for the given machine configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SimConfig::validate`].
    #[must_use]
    pub fn new(config: SimConfig) -> Self {
        config.validate();
        Simulator { config }
    }

    /// Runs the machine over a dynamic instruction stream until every
    /// instruction has committed, and returns the accumulated statistics.
    pub fn run<I>(self, trace: I) -> SimStats
    where
        I: IntoIterator<Item = DynInst>,
    {
        SimSession::new(self.config, trace.into_iter()).run_to_completion()
    }
}

/// Sentinel in [`DepWire::slots`]: the record was consumed at decode
/// (kill, eliminated save/restore) and never occupied a window entry.
const NOT_DISPATCHED: u64 = u64::MAX;

/// The dependence-graph wiring of one core: maps the shared
/// [`DepGraph`]'s producer *record indices* onto this member's *window
/// sequence numbers* so dispatch and wakeup bypass the alias table.
///
/// The map is a power-of-two ring indexed by `record_seq & mask`, written
/// once per record in dispatch order (the entry's window sequence number,
/// or [`NOT_DISPATCHED`]). Soundness rests on one invariant, maintained
/// by [`DepWire::ensure_span`] before every write: the ring is longer
/// than the record-index span of the instruction window, so
///
/// * a producer further back than the ring length is necessarily
///   committed (its operand is ready), and
/// * a producer within the ring length reads its own slot — aliasing
///   would require a younger record at the same masked index, which the
///   span invariant excludes while the producer can still be in flight.
///
/// The invariant check is amortized: because the window head's record
/// sequence number only grows, a single precomputed watermark
/// (`check_at = head_seq + ring_len`) certifies every record before it,
/// and the head is only re-read when a record crosses the watermark.
#[derive(Debug)]
struct DepWire {
    graph: Arc<DepGraph>,
    slots: Vec<u64>,
    /// First record sequence number at which the span invariant must be
    /// re-established (see the type docs).
    check_at: u64,
    /// Sever bits this machine acts on ([`DepGraph::sever_mask`]).
    sever: u8,
}

impl DepWire {
    fn new(graph: Arc<DepGraph>, config: &SimConfig, window_ring: u64) -> DepWire {
        let reclaim = config.dvi.reclaim_phys_regs;
        DepWire {
            graph,
            // Start comfortably above the window span; consumed-at-decode
            // records stretch the span past the window size, and
            // `ensure_span` grows the ring when they do.
            slots: vec![NOT_DISPATCHED; (window_ring as usize * 4).max(256)],
            check_at: 0,
            sever: DepGraph::sever_mask(
                config.dvi.use_edvi && reclaim,
                config.dvi.use_idvi && reclaim,
            ),
        }
    }

    /// Re-establishes the span invariant before writing record `seq`'s
    /// slot: on the (amortized-rare) watermark crossing, re-reads the
    /// window head and grows the ring if the span caught up with it.
    #[inline]
    fn ensure_span(&mut self, seq: u64, window: &WindowRing) {
        if seq < self.check_at {
            return;
        }
        self.reestablish_span(seq, window);
    }

    /// Cold path of [`DepWire::ensure_span`]: recompute the watermark,
    /// growing the ring when the window's record span caught up with its
    /// length. Existing in-window entries are rehashed from their stored
    /// sequence numbers; everything older is committed or consumed, for
    /// which the default [`NOT_DISPATCHED`] gives the correct (ready)
    /// answer.
    #[cold]
    fn reestablish_span(&mut self, seq: u64, window: &WindowRing) {
        let Some(head) = (!window.is_empty()).then(|| window.dseq(window.head_seq())) else {
            // Empty window: every later head is a record at or after
            // `seq`, so the span stays under the ring length for the next
            // ring-length records.
            self.check_at = seq + self.slots.len() as u64;
            return;
        };
        let span = (seq - head) as usize;
        if span >= self.slots.len() {
            let new_len = (span + 1).next_power_of_two() * 2;
            let mut slots = vec![NOT_DISPATCHED; new_len];
            for wseq in window.seqs() {
                slots[(window.dseq(wseq) as usize) & (new_len - 1)] = wseq;
            }
            self.slots = slots;
        }
        // The head's record sequence number only grows, so every record
        // before `head + len` keeps the span under the ring length.
        self.check_at = head + self.slots.len() as u64;
    }

    /// Records the dispatch outcome of record `seq`.
    #[inline]
    fn mark(&mut self, seq: u64, value: u64) {
        let mask = self.slots.len() - 1;
        self.slots[seq as usize & mask] = value;
    }

    /// Resolves both source operands of record `seq` against the member's
    /// window: `None` means the operand is available, `Some(wseq)` the
    /// window entry it must wait on. Equivalent to the alias-table walk:
    /// an operand is available exactly when `rename.lookup` would return
    /// `None` (no producer, or a DVI-severed mapping) or a physical
    /// register whose value has been produced. Completion is probed
    /// straight off the window's packed `done` flag array — the
    /// dependence-path analogue of the alias table's dense ready bits.
    #[inline]
    fn resolve_pair(&self, seq: u64, window: &WindowRing) -> [Option<u64>; 2] {
        let (producers, flags) = self.graph.row(seq as usize);
        let cut = flags & self.sever;
        let mask = self.slots.len() - 1;
        let mut waits = [None, None];
        for (k, wait) in waits.iter_mut().enumerate() {
            let producer = producers[k];
            if producer == DepGraph::NO_PRODUCER || cut & DepGraph::OPERAND_CUT[k] != 0 {
                continue;
            }
            if seq - u64::from(producer) > mask as u64 {
                // Beyond the ring: the span invariant guarantees the
                // producer committed long ago.
                continue;
            }
            let wseq = self.slots[producer as usize & mask];
            if wseq == NOT_DISPATCHED || wseq < window.head_seq() {
                continue;
            }
            debug_assert!(window.contains(wseq), "producer entry neither committed nor in flight");
            debug_assert_eq!(
                window.dseq(wseq),
                u64::from(producer),
                "dependence ring slot aliased"
            );
            if !window.is_done(wseq) {
                *wait = Some(wseq);
            }
        }
        waits
    }
}

/// The pipeline state and per-cycle machinery of one simulated machine,
/// driven cycle-at-a-time by [`SimSession`].
#[derive(Debug)]
pub(crate) struct Core {
    config: SimConfig,
    rename: RenameState,
    dvi: DviModel,
    mem: MemoryHierarchy,
    ports: CachePorts,
    fu: FuPool,
    /// Fetch-stage branch prediction: a private live predictor, or a
    /// cursor over a sweep-shared [`crate::batch::BranchOracle`].
    pred: FetchPredictor,
    window: WindowRing,
    /// The shared in-order front end (fetch queue, redirect state machine,
    /// per-PC decode products, decode-stage DVI plumbing).
    front: FrontEnd,
    pub(crate) cycle: u64,
    pub(crate) stats: SimStats,
    // --- Event-driven scheduling state (unused by the naive scan). ---
    event_driven: bool,
    /// Producer-link wiring over a shared dependence graph; `None` renames
    /// sources through the alias table (the default, and the only option
    /// for the naive-scan scheduler and live instruction sources).
    dep: Option<DepWire>,
    /// Shared dispatch-group fusion table (trace-pure group boundaries,
    /// intra-group wakeup wiring, rename demand); `None` dispatches every
    /// record through the cycle-accurate slow loop. Only attached together
    /// with producer-link wiring (`dep`) at a matching decode width.
    fusion: Option<Arc<FusionTable>>,
    calendar: Calendar,
    waiters: Waiters,
    ready: ReadyRing,
    /// Reused buffers for calendar drains, waiter drains and the per-cycle
    /// ready list, so the per-cycle loop performs no allocation.
    scratch_events: Vec<u64>,
    scratch_woken: Vec<u64>,
    scratch_ready: Vec<u64>,
}

impl Core {
    /// Builds a core with private front-end tables (decode memo, live
    /// predictor).
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SimConfig::validate`].
    pub(crate) fn new(config: SimConfig) -> Core {
        let pred = FetchPredictor::live(config.predictor);
        let front = FrontEnd::new(&config);
        Core::build(config, pred, front, None, None, None, None)
    }

    /// Builds a core consuming immutable trace-pure products shared across
    /// a batched sweep: decode table, branch prediction, L1I outcomes,
    /// dependence graph and/or the decode-stage DVI event stream. Absent
    /// products fall back to private live structures.
    pub(crate) fn with_shared(config: SimConfig, tables: SharedTables) -> Core {
        Core::with_shared_and_dcache(config, tables, None)
    }

    /// [`Core::with_shared`] with an optional substitute L1-data-side
    /// model (see [`dvi_mem::DataMemModel`]): the session-level seam for a
    /// per-member D-cache — a recording instrument, a fingerprint probe,
    /// or any explicit stand-in. When no explicit model is given and the
    /// shared tables carry a D-cache oracle, the member replays the
    /// recorded L1D outcomes through a [`DcacheOracleCursor`] instead of
    /// driving a private tag array.
    pub(crate) fn with_shared_and_dcache(
        config: SimConfig,
        tables: SharedTables,
        dcache: Option<Box<dyn DataMemModel>>,
    ) -> Core {
        // An explicit model wins over the shared oracle: recording and
        // qualification runs pass instruments here while consuming the
        // rest of the shared bundle.
        let dcache = dcache.or_else(|| {
            tables.dcache.as_ref().map(|oracle| {
                Box::new(DcacheOracleCursor::new(Arc::clone(oracle))) as Box<dyn DataMemModel>
            })
        });
        let pred = match tables.branches {
            Some(oracle) => FetchPredictor::Oracle(OracleCursor::new(oracle)),
            None => FetchPredictor::live(config.predictor),
        };
        let icache = tables.icache.map(IcacheCursor::new);
        // Producer-link wiring is an event-driven-scheduler refinement;
        // the naive scan's reference writeback/issue loops re-check
        // per-operand physical-register ready bits, so those members keep
        // alias-table renaming.
        let depgraph = tables.depgraph.filter(|_| config.scheduler == SchedulerKind::EventDriven);
        // Fusion rides the producer-link wiring (its precomputed wakeup
        // edges are window positions) and is partitioned per decode width;
        // anything else falls back to the slow loop wholesale.
        let fusion =
            tables.fusion.filter(|f| depgraph.is_some() && f.width() == config.decode_width);
        let dvi = tables.dvi.map(|oracle| DviModel::Oracle(DviCursor::new(oracle)));
        let front = FrontEnd::with_shared(&config, tables.decode, icache, depgraph.is_some());
        Core::build(config, pred, front, depgraph, fusion, dvi, dcache)
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        config: SimConfig,
        pred: FetchPredictor,
        front: FrontEnd,
        depgraph: Option<Arc<DepGraph>>,
        fusion: Option<Arc<FusionTable>>,
        dvi: Option<DviModel>,
        dcache: Option<Box<dyn DataMemModel>>,
    ) -> Core {
        config.validate();
        let window = WindowRing::new(config.window_size);
        let dep = depgraph.map(|graph| DepWire::new(graph, &config, window.ring_size()));
        // Waiter lists are keyed by physical register under alias-table
        // renaming, and by window ring position under producer-link
        // wiring (in-flight producers only).
        let waiter_keys = if dep.is_some() {
            usize::try_from(window.ring_size()).expect("window ring fits in usize")
        } else {
            config.phys_regs
        };
        let mut mem =
            MemoryHierarchy::new(config.icache, config.dcache, config.l2, config.memory_latency);
        if let Some(model) = dcache {
            mem = mem.with_dcache_model(model);
        } else if config.dcache_model == DcacheModelKind::Perfect {
            mem = mem.with_dcache_model(Box::new(PerfectDcache::new(config.dcache.latency)));
        }
        // The longest schedulable latency is a load missing every level.
        let max_latency = config.dcache.latency + config.l2.latency + config.memory_latency + 64;
        Core {
            rename: RenameState::new(config.phys_regs),
            dvi: dvi
                .unwrap_or_else(|| DviModel::Live(DviEngine::new(config.dvi, Abi::mips_like()))),
            mem,
            ports: CachePorts::new(config.cache_ports),
            fu: FuPool::new(config.int_alu_units, config.int_mul_units),
            pred,
            front,
            cycle: 0,
            stats: SimStats::default(),
            event_driven: config.scheduler == SchedulerKind::EventDriven,
            dep,
            fusion,
            calendar: Calendar::new(max_latency),
            waiters: Waiters::new(waiter_keys),
            ready: ReadyRing::new(window.ring_size()),
            scratch_events: Vec::new(),
            scratch_woken: Vec::new(),
            scratch_ready: Vec::new(),
            window,
            config,
        }
    }

    /// Waiter-list key of an in-flight producer under producer-link
    /// wiring: its window ring position.
    #[inline]
    fn waiter_key(&self, wseq: u64) -> usize {
        (wseq & (self.window.ring_size() - 1)) as usize
    }

    /// Simulates one cycle: commit, writeback, issue, rename/dispatch and
    /// fetch, then per-cycle resource bookkeeping.
    pub(crate) fn step<S: InstrSource>(&mut self, source: &mut S) {
        self.commit();
        self.writeback();
        self.issue();
        self.rename_dispatch();
        self.front.fetch(
            self.cycle,
            &self.config,
            &mut self.mem,
            &mut self.pred,
            &mut self.stats,
            source,
        );

        self.cycle += 1;
        self.fu.next_cycle();
        self.ports.next_cycle();
        let used = self.rename.total() - self.rename.free_count();
        self.stats.peak_phys_regs_used = self.stats.peak_phys_regs_used.max(used);
    }

    /// Whether the source is exhausted and the pipeline empty.
    pub(crate) fn at_drain(&self) -> bool {
        self.front.is_drained() && self.window.is_empty()
    }

    /// Instructions currently in flight in the window (deadlock
    /// diagnostics).
    pub(crate) fn window_occupancy(&self) -> usize {
        self.window.len()
    }

    /// Trace record sequence number of the window-head instruction, when
    /// one is in flight (deadlock diagnostics: identifies the wedged
    /// instruction in the trace).
    pub(crate) fn head_record_seq(&self) -> Option<u64> {
        (!self.window.is_empty()).then(|| self.window.dseq(self.window.head_seq()))
    }

    /// Drain-time reclaim release: registers reclaimed by a trailing
    /// `kill` (or left pending when rename stalled at trace end) have no
    /// later dispatched instruction to ride to commit — release them here
    /// so they are not leaked.
    pub(crate) fn release_at_drain(&mut self) {
        self.front.release_pending_reclaims(&mut self.rename);
        // With nothing in flight, every physical register must be either
        // architecturally mapped or on the free list — a shortfall means a
        // reclaim was leaked.
        debug_assert_eq!(
            self.rename.mapped_count() + self.rename.free_count(),
            self.rename.total(),
            "physical registers leaked at drain"
        );
    }

    /// Folds the subsystem counters into the statistics and returns them.
    pub(crate) fn finalize(mut self) -> SimStats {
        self.stats.cycles = self.cycle;
        self.stats.dvi = self.dvi.stats();
        self.stats.branch = self.pred.stats();
        self.stats.memory = self.mem.stats();
        if let Some(l1i) = self.front.icache_oracle_stats() {
            // The private L1I tag array was bypassed in favour of a shared
            // oracle; its counters live in the oracle cursor.
            self.stats.memory.l1i = l1i;
        }
        self.stats
    }

    // ----------------------------------------------------------- commit --
    /// In-order commit: retire up to `commit_width` finished entries off
    /// the window head. Per retiring entry this reads one `done` flag,
    /// one `old_dst` halfword and the (usually empty) reclaim list — the
    /// rest of the slot's arrays are never touched.
    fn commit(&mut self) {
        let dep_wired = self.dep.is_some();
        let mut committed = 0;
        while committed < self.config.commit_width {
            if self.window.is_empty() {
                break;
            }
            let head = self.window.head_seq();
            if !self.window.is_done(head) {
                break;
            }
            debug_assert!(
                !dep_wired || !self.waiters.has_waiters(self.waiter_key(head)),
                "committing entry still has waiters"
            );
            if let Some(old) = self.window.old_dst(head) {
                debug_assert!(
                    !self.event_driven
                        || dep_wired
                        || !self.waiters.has_waiters(usize::from(old.0)),
                    "released register still has waiters"
                );
                self.rename.release(old);
            }
            for p in self.window.reclaim(head).iter() {
                debug_assert!(
                    !self.event_driven || dep_wired || !self.waiters.has_waiters(usize::from(p.0)),
                    "reclaimed register still has waiters"
                );
                self.rename.release(p);
            }
            self.window.pop_front();
            self.stats.committed_entries += 1;
            self.stats.program_instrs += 1;
            committed += 1;
        }
    }

    // -------------------------------------------------------- writeback --
    fn writeback(&mut self) {
        if self.event_driven {
            self.writeback_event();
        } else {
            self.writeback_scan();
        }
    }

    /// Event-driven writeback fused with wakeup: drain exactly the
    /// calendar bucket for this cycle, publish each completion in the
    /// window's `done` flag array (the same array dependence-graph
    /// resolution probes — there is no second copy to keep in sync) and
    /// wake each result's waiters in the same pass.
    fn writeback_event(&mut self) {
        if self.calendar.pending() == 0 {
            return;
        }
        let mut events = std::mem::take(&mut self.scratch_events);
        self.calendar.drain_due(self.cycle, &mut events);
        for &wseq in &events {
            debug_assert_eq!(
                self.window.state(wseq),
                EntryState::Executing { done_at: self.cycle }
            );
            let (dst, resolves) = self.window.complete(wseq);
            if self.dep.is_some() {
                // Producer-link wiring: waiters are keyed on this entry's
                // ring position (the physical-register ready bits are not
                // on the dependence path at all).
                self.drain_waiters(self.waiter_key(wseq));
            } else if let Some(p) = dst {
                self.wake_phys(p.0);
            }
            if resolves {
                self.front.resolve_fetch_stall(self.cycle, self.config.mispredict_penalty);
            }
        }
        self.scratch_events = events;
    }

    /// Marks physical register `p` produced and moves waiters whose last
    /// missing operand this was into the ready set.
    fn wake_phys(&mut self, p: u16) {
        self.rename.set_ready(crate::rename::PhysReg(p));
        self.drain_waiters(usize::from(p));
    }

    /// Drains the waiter list of producer key `key`, decrementing each
    /// waiter's missing-operand count and marking newly complete entries
    /// ready.
    fn drain_waiters(&mut self, key: usize) {
        if !self.waiters.has_waiters(key) {
            return;
        }
        let mut woken = std::mem::take(&mut self.scratch_woken);
        self.waiters.drain(key, &mut woken);
        for &wseq in &woken {
            debug_assert!(self.window.is_waiting(wseq), "waiter is not waiting");
            if self.window.dec_missing(wseq) == 0 {
                self.ready.set(wseq);
            }
        }
        self.scratch_woken = woken;
    }

    /// Reference writeback: scan the whole window for completions.
    fn writeback_scan(&mut self) {
        for wseq in self.window.seqs() {
            let EntryState::Executing { done_at } = self.window.state(wseq) else { continue };
            if done_at > self.cycle {
                continue;
            }
            self.window.set_done(wseq);
            if let Some(dst) = self.window.dst(wseq) {
                self.rename.set_ready(dst);
            }
            if self.window.resolves_fetch_stall(wseq) {
                self.front.resolve_fetch_stall(self.cycle, self.config.mispredict_penalty);
            }
        }
    }

    // ------------------------------------------------------------ issue --
    fn issue(&mut self) {
        if self.event_driven {
            self.issue_event();
        } else {
            self.issue_scan();
        }
    }

    /// Event-driven select: walk the ready set in age order; entries denied
    /// a functional unit stay ready for the next cycle. The walk is lazy
    /// over a word snapshot, so it stops as soon as `issue_width`
    /// instructions have issued instead of materializing the whole ready
    /// list every cycle.
    fn issue_event(&mut self) {
        if self.ready.count() == 0 {
            return;
        }
        let mut snap = std::mem::take(&mut self.scratch_ready);
        self.ready.snapshot_words(&mut snap);
        let mut issued = 0;
        for wseq in self.ready.iter_snapshot(&snap, self.window.head_seq()) {
            if issued >= self.config.issue_width {
                break;
            }
            debug_assert!(self.window.is_waiting(wseq));
            let class = self.window.class(wseq);
            let kind = class.fu_kind().expect("ready entries occupy a functional unit");
            if kind == FuKind::MemPort {
                if !self.ports.try_acquire() {
                    continue;
                }
            } else if !self.fu.try_acquire(kind) {
                continue;
            }
            let latency = self.execution_latency(wseq, class);
            let done_at = self.cycle + latency.max(1);
            self.window.mark_executing(wseq, done_at);
            self.ready.clear(wseq);
            self.calendar.schedule(self.cycle, done_at, wseq);
            issued += 1;
        }
        self.scratch_ready = snap;
    }

    /// Reference select: scan the whole window in age order, checking
    /// per-operand ready bits.
    fn issue_scan(&mut self) {
        let mut issued = 0;
        for wseq in self.window.seqs() {
            if issued >= self.config.issue_width {
                break;
            }
            if !self.window.is_waiting(wseq) {
                continue;
            }
            let ready =
                self.window.srcs(wseq).into_iter().flatten().all(|p| self.rename.is_ready(p));
            if !ready {
                continue;
            }
            let class = self.window.class(wseq);
            let Some(kind) = class.fu_kind() else {
                self.window.set_done(wseq);
                continue;
            };
            if kind == FuKind::MemPort {
                if !self.ports.try_acquire() {
                    continue;
                }
            } else if !self.fu.try_acquire(kind) {
                continue;
            }
            let latency = self.execution_latency(wseq, class);
            self.window.mark_executing(wseq, self.cycle + latency.max(1));
            issued += 1;
        }
    }

    fn execution_latency(&mut self, wseq: u64, class: InstrClass) -> u64 {
        // Memory classes are guaranteed an effective address by
        // `WindowRing::push` — the decode bug that used to silently alias
        // an address-less load onto line 0 can no longer reach this point.
        match class {
            InstrClass::Load => {
                let addr = self.window.mem_addr(wseq);
                self.mem.data_access(addr, false).latency
            }
            InstrClass::Store => {
                let addr = self.window.mem_addr(wseq);
                // Stores retire into the cache; the pipeline only waits for
                // address/data readiness, so the latency charged here is the
                // port occupancy, while the access updates the cache state.
                let _ = self.mem.data_access(addr, true);
                1
            }
            other => u64::from(other.base_latency()),
        }
    }

    // --------------------------------------------------- rename/dispatch --

    /// Fused fast path: bulk-dispatches a prefix of the fusion run at the
    /// fetch-queue front via [`FusionTable`] lookups, or returns `None`
    /// when the front record needs the slow loop — no table, an ineligible
    /// record, or a structural hazard (no window slot, or a destination
    /// with no free register) that the cycle-accurate loop must resolve
    /// record-at-a-time, reproducing its stall counters and per-attempt
    /// billing exactly. The take is capped at the width budget, the queue
    /// depth, the window's free slots and the free list, so dynamic
    /// dispatch can split a static group across cycles (and resume it
    /// mid-group) without ever leaving the fast path.
    ///
    /// Per record, the fast path performs the same side effects in the
    /// same order as [`FrontEnd::next_dispatch`] + the dispatch arm of
    /// [`Core::rename_dispatch`]: memory-reference accounting, free-list
    /// allocation (identical LIFO order), DVI destination liveness, window
    /// push, reclaim drain, and producer-link wiring. Intra-group wakeup
    /// edges come from the table as a distance back in window slots —
    /// every group member occupies exactly one slot, so the producer of a
    /// record is always `wseq - distance` no matter which cycle dispatched
    /// it — guarded by the same committed/complete probes as
    /// [`DepWire::resolve_pair`]. Fused and unfused dispatch are therefore
    /// bit-identical (locked by `tests/fusion_equiv.rs`).
    fn try_dispatch_group(&mut self, dispatched: usize) -> Option<usize> {
        let fusion = self.fusion.as_deref()?;
        let dep = self.dep.as_mut()?;
        let queue_len = self.front.queue_len();
        if queue_len == 0 {
            return None;
        }
        let start = self.front.queued(0).seq as usize;
        let run = fusion.run_len(start);
        if run == 0 {
            return None;
        }
        let budget = self.config.decode_width - dispatched;
        let mut take = run.min(budget).min(queue_len).min(self.window.free_slots());
        if take == 0 {
            return None;
        }
        let free = self.rename.free_count();
        if free < take.min(fusion.run_dsts(start)) {
            // The free list cannot cover the whole take's worst case:
            // dispatch up to (not including) the destination-bearing
            // record the slow loop would stall renaming, so the stall is
            // attempted — and billed — exactly where the slow loop bills
            // it.
            let mut dsts = 0;
            let mut n = 0;
            while n < take {
                if fusion.flags(start + n) & fusion_flag::HAS_DST != 0 {
                    if dsts == free {
                        break;
                    }
                    dsts += 1;
                }
                n += 1;
            }
            if n == 0 {
                return None;
            }
            take = n;
        }
        let mispredict = self.front.unresolved_mispredict();
        let ring_mask = self.window.ring_size() - 1;
        let head = self.window.head_seq();
        for i in 0..take {
            let d = self.front.queued(i);
            let (seq, mem_addr) = (d.seq, d.mem_addr);
            let rec = start + i;
            debug_assert_eq!(seq as usize, rec, "fetch queue out of step with fusion run");
            let m = fusion.record(rec);
            let flags = m.flags;
            if flags & fusion_flag::IS_MEM != 0 {
                self.stats.mem_refs += 1;
            }
            let (dst, old_dst) = if flags & fusion_flag::HAS_DST != 0 {
                let ar = ArchReg::new(m.dst);
                let (new, old) =
                    self.rename.rename_dst(ar).expect("free-list precheck covered the take");
                self.dvi.on_dest_rename(ar);
                (Some(new), old)
            } else {
                (None, None)
            };
            let wseq = self.window.push(
                mem_addr,
                dst,
                old_dst,
                [None, None],
                m.class,
                seq,
                mispredict == Some(seq),
            );
            self.front.drain_reclaim_into(self.window.reclaim_mut(wseq));
            if flags & fusion_flag::HAS_FU == 0 {
                self.window.set_done(wseq);
                dep.ensure_span(seq, &self.window);
                dep.mark(seq, wseq);
            } else {
                dep.ensure_span(seq, &self.window);
                let mut missing = 0u8;
                if flags & fusion_flag::ANY_EXTERNAL != 0 {
                    // An operand's producer predates the group: probe the
                    // dependence ring exactly like the slow loop (it also
                    // covers the other, possibly intra-group, operand —
                    // earlier group members are already marked).
                    for pw in dep.resolve_pair(seq, &self.window).into_iter().flatten() {
                        self.waiters.wait((pw & ring_mask) as usize, wseq);
                        missing += 1;
                    }
                } else {
                    // Purely intra-group (or ready-at-dispatch) operands:
                    // the producer sits `w` window slots back. A producer
                    // dispatched in an earlier cycle may already have
                    // completed or committed, so the same two probes as
                    // `resolve_pair` gate the wakeup edge; the
                    // member-dependent DVI sever bits are applied here
                    // too.
                    let cut = m.dep_flags & dep.sever;
                    for (k, &w) in m.wait.iter().enumerate() {
                        if w == FusionTable::NO_WAIT || cut & DepGraph::OPERAND_CUT[k] != 0 {
                            continue;
                        }
                        let pw = wseq - u64::from(w);
                        if pw >= head && !self.window.is_done(pw) {
                            self.waiters.wait((pw & ring_mask) as usize, wseq);
                            missing += 1;
                        }
                    }
                }
                dep.mark(seq, wseq);
                self.window.set_missing(wseq, missing);
                if missing == 0 {
                    self.ready.set(wseq);
                }
            }
        }
        self.front.consume_queued(take);
        self.stats.fusion.groups += 1;
        self.stats.fusion.fused_records += take as u64;
        Some(take)
    }

    fn rename_dispatch(&mut self) {
        let mut dispatched = 0;
        while dispatched < self.config.decode_width {
            if let Some(n) = self.try_dispatch_group(dispatched) {
                dispatched += n;
                continue;
            }
            let outcome = self.front.next_dispatch(
                self.window.is_full(),
                &mut self.dvi,
                &mut self.rename,
                &mut self.stats,
            );
            match outcome {
                Dispatch::Empty | Dispatch::StallWindow | Dispatch::StallRename => break,
                Dispatch::Consumed { seq } => {
                    if self.fusion.is_some() {
                        self.stats.fusion.fallback_records += 1;
                    }
                    if let Some(dep) = &mut self.dep {
                        // Consumed at decode: the record never produces a
                        // window entry, so any (well-formed-ly impossible)
                        // link to it resolves ready.
                        dep.ensure_span(seq, &self.window);
                        dep.mark(seq, NOT_DISPATCHED);
                    }
                    dispatched += 1;
                }
                Dispatch::Enter(e) => {
                    if self.fusion.is_some() {
                        self.stats.fusion.fallback_records += 1;
                    }
                    let wseq = self.window.push(
                        e.mem_addr,
                        e.dst,
                        e.old_dst,
                        e.srcs,
                        e.class,
                        e.seq,
                        e.resolves_fetch_stall,
                    );
                    self.front.drain_reclaim_into(self.window.reclaim_mut(wseq));
                    if e.fu_kind.is_none() {
                        // No functional unit: complete at dispatch (moves,
                        // nops and control handled entirely in the front
                        // end). The window's `done` flag is the completion
                        // set dependence resolution probes, so there is
                        // nothing extra to publish.
                        self.window.set_done(wseq);
                        if let Some(dep) = &mut self.dep {
                            dep.ensure_span(e.seq, &self.window);
                            dep.mark(e.seq, wseq);
                        }
                    } else if let Some(dep) = &mut self.dep {
                        // Producer-link wiring: resolve both operands
                        // against the shared dependence graph — wait
                        // exactly on producers that are in flight and not
                        // yet complete, keyed by their window position.
                        dep.ensure_span(e.seq, &self.window);
                        let ring_mask = self.window.ring_size() - 1;
                        let mut missing = 0u8;
                        for pw in dep.resolve_pair(e.seq, &self.window).into_iter().flatten() {
                            self.waiters.wait((pw & ring_mask) as usize, wseq);
                            missing += 1;
                        }
                        dep.mark(e.seq, wseq);
                        self.window.set_missing(wseq, missing);
                        if missing == 0 {
                            self.ready.set(wseq);
                        }
                    } else if self.event_driven {
                        // Register with the wakeup network: wait on each
                        // operand that has not been produced yet.
                        let mut missing = 0u8;
                        for p in e.srcs.iter().flatten() {
                            if !self.rename.is_ready(*p) {
                                self.waiters.wait(usize::from(p.0), wseq);
                                missing += 1;
                            }
                        }
                        self.window.set_missing(wseq, missing);
                        if missing == 0 {
                            self.ready.set(wseq);
                        }
                    }
                    dispatched += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvi_core::DviConfig;
    use dvi_isa::{AluOp, ArchReg, Instr};
    use dvi_program::{Interpreter, ProcBuilder, Program, ProgramBuilder};

    fn r(i: u8) -> ArchReg {
        ArchReg::new(i)
    }

    /// A small straight-line program: chain of dependent adds then halt.
    fn dependent_chain(n: usize) -> Program {
        let mut b = ProgramBuilder::new();
        let mut main = ProcBuilder::new("main");
        main.emit(Instr::load_imm(r(8), 1));
        for _ in 0..n {
            main.emit(Instr::Alu { op: AluOp::Add, rd: r(8), rs: r(8), rt: r(8) });
        }
        main.emit(Instr::Halt);
        b.add_procedure(main).unwrap();
        b.build("main").unwrap()
    }

    /// A program of independent adds (ILP limited only by machine width).
    fn independent_ops(n: usize) -> Program {
        let mut b = ProgramBuilder::new();
        let mut main = ProcBuilder::new("main");
        for i in 0..n {
            let dst = 8 + (i % 6) as u8;
            main.emit(Instr::load_imm(r(dst), i as i32));
        }
        main.emit(Instr::Halt);
        b.add_procedure(main).unwrap();
        b.build("main").unwrap()
    }

    fn run_program(prog: &Program, config: SimConfig) -> SimStats {
        let layout = prog.layout().unwrap();
        let interp = Interpreter::new(&layout).with_step_limit(1_000_000);
        let stats = Simulator::new(config).run(interp);
        // The watchdog no longer asserts inside the pipeline; it returns a
        // structured report instead. These unit workloads must never trip
        // it, so surface the report (not a bare flag) if one ever does.
        assert_eq!(stats.deadlock, None, "watchdog fired: statistics describe a partial run");
        stats
    }

    #[test]
    fn dependent_chain_runs_at_about_one_ipc() {
        let stats = run_program(&dependent_chain(2000), SimConfig::micro97());
        assert!(stats.ipc() <= 1.1, "a dependence chain cannot exceed 1 IPC, got {}", stats.ipc());
        assert!(stats.ipc() > 0.8, "the chain should sustain close to 1 IPC, got {}", stats.ipc());
    }

    #[test]
    fn independent_ops_exploit_superscalar_width() {
        let stats = run_program(&independent_ops(4000), SimConfig::micro97());
        assert!(stats.ipc() > 2.0, "independent work should exceed 2 IPC, got {}", stats.ipc());
        assert!(stats.ipc() <= 4.0 + 1e-9);
    }

    #[test]
    fn every_fetched_program_instruction_is_accounted_for() {
        let prog = dependent_chain(100);
        let stats = run_program(&prog, SimConfig::micro97());
        assert_eq!(stats.program_instrs, 102);
        assert_eq!(stats.fetched_instrs, 102);
        assert_eq!(stats.fetched_kills, 0);
    }

    #[test]
    fn tiny_register_file_throttles_ipc() {
        let wide = run_program(&independent_ops(4000), SimConfig::micro97().with_phys_regs(80));
        let narrow = run_program(&independent_ops(4000), SimConfig::micro97().with_phys_regs(34));
        assert!(
            narrow.ipc() < wide.ipc() * 0.7,
            "renaming pressure should throttle IPC: narrow {} vs wide {}",
            narrow.ipc(),
            wide.ipc()
        );
        assert!(narrow.rename_stalls_no_reg > 0);
    }

    #[test]
    fn naive_scan_scheduler_models_the_same_machine() {
        for prog in [dependent_chain(500), independent_ops(1500)] {
            let event = run_program(&prog, SimConfig::micro97());
            let naive =
                run_program(&prog, SimConfig::micro97().with_scheduler(SchedulerKind::NaiveScan));
            assert_eq!(event, naive, "schedulers disagree");
        }
    }

    #[test]
    fn trace_ending_at_a_kill_releases_pending_reclaims() {
        // A trace truncated right after a `kill` leaves reclaimed physical
        // registers with no later dispatched instruction to ride to commit;
        // the drain path must release them (checked by the conservation
        // debug assertion in `run`).
        let spec = dvi_workloads::WorkloadSpec::small("kill-tail", 3);
        let program = dvi_workloads::generate(&spec);
        let abi = Abi::mips_like();
        let compiled =
            dvi_compiler::compile(&program, &abi, dvi_compiler::CompileOptions::default()).unwrap();
        let layout = compiled.program.layout().unwrap();
        let trace: Vec<DynInst> = Interpreter::new(&layout).take(20_000).collect();
        let kill_pos = trace
            .iter()
            .rposition(|d| matches!(d.instr, Instr::Kill { .. }))
            .expect("an E-DVI binary contains kills");
        let truncated: Vec<DynInst> = trace[..=kill_pos].to_vec();
        let stats = Simulator::new(SimConfig::micro97().with_dvi(DviConfig::full())).run(truncated);
        assert!(stats.dvi.phys_regs_reclaimed_early > 0, "the tail kill must reclaim registers");
    }

    #[test]
    fn dvi_frees_registers_earlier_on_call_heavy_code() {
        // A program that calls a leaf in a loop: I-DVI should reclaim
        // caller-saved mappings at every call/return.
        let mut b = ProgramBuilder::new();
        let mut main = ProcBuilder::new("main");
        let body = main.new_block();
        main.emit(Instr::load_imm(r(16), 200));
        main.switch_to(body);
        main.emit(Instr::mov(ArchReg::A0, r(16)));
        main.emit_call("leaf");
        main.emit(Instr::AluImm { op: AluOp::Sub, rd: r(16), rs: r(16), imm: 1 });
        main.emit_branch(dvi_isa::CmpOp::Ne, r(16), ArchReg::ZERO, body);
        let exit = main.new_block();
        main.switch_to(exit);
        main.emit(Instr::Halt);
        b.add_procedure(main).unwrap();
        let mut leaf = ProcBuilder::new("leaf");
        leaf.emit(Instr::Alu { op: AluOp::Add, rd: ArchReg::RV, rs: ArchReg::A0, rt: ArchReg::A0 });
        leaf.emit(Instr::Return);
        b.add_procedure(leaf).unwrap();
        let prog = b.build("main").unwrap();

        let no_dvi = run_program(&prog, SimConfig::micro97().with_phys_regs(40));
        let idvi = run_program(
            &prog,
            SimConfig::micro97().with_phys_regs(40).with_dvi(DviConfig::idvi_only()),
        );
        assert!(idvi.dvi.phys_regs_reclaimed_early > 0);
        assert!(no_dvi.dvi.phys_regs_reclaimed_early == 0);
        assert!(idvi.peak_phys_regs_used <= no_dvi.peak_phys_regs_used);
    }

    #[test]
    fn save_restore_elimination_end_to_end() {
        // Use the compiler and a workload to produce real prologues and
        // E-DVI, then check the LVM-Stack machine eliminates a good chunk.
        let spec = dvi_workloads::WorkloadSpec::small("sim-toy", 3);
        let program = dvi_workloads::generate(&spec);
        let abi = Abi::mips_like();
        let compiled =
            dvi_compiler::compile(&program, &abi, dvi_compiler::CompileOptions::default()).unwrap();
        let layout = compiled.program.layout().unwrap();

        let run = |dvi: DviConfig| {
            let interp = Interpreter::new(&layout).with_step_limit(100_000);
            Simulator::new(SimConfig::micro97().with_dvi(dvi)).run(interp)
        };
        let baseline = run(DviConfig::none());
        let lvm_only = run(DviConfig::lvm_scheme());
        let full = run(DviConfig::full());

        assert_eq!(baseline.dvi.save_restores_eliminated(), 0);
        assert!(full.dvi.saves_eliminated > 0, "some saves must be eliminated");
        assert!(full.dvi.restores_eliminated > 0, "some restores must be eliminated");
        assert!(lvm_only.dvi.restores_eliminated == 0);
        assert!(full.dvi.save_restores_eliminated() >= lvm_only.dvi.save_restores_eliminated());
        // Dropping instructions should not hurt the cycle count (allow a
        // tiny tolerance for second-order scheduling effects).
        assert!(full.cycles <= baseline.cycles + baseline.cycles / 100);
        // Work accounting: every fetched instruction is either an E-DVI
        // annotation or a program instruction (committed or eliminated).
        assert_eq!(full.program_instrs + full.fetched_kills, full.fetched_instrs);
        assert_eq!(baseline.program_instrs + baseline.fetched_kills, baseline.fetched_instrs);
    }

    #[test]
    fn dcache_model_seam_is_bit_identical_for_same_geometry() {
        // Substituting a fresh tag array of the member's own geometry
        // through the `DataMemModel` seam must be invisible end to end;
        // a perfect D-cache is a deliberately different (no-slower)
        // machine.
        let spec = dvi_workloads::WorkloadSpec::small("dmem-seam", 13);
        let program = dvi_workloads::generate(&spec);
        let abi = Abi::mips_like();
        let compiled =
            dvi_compiler::compile(&program, &abi, dvi_compiler::CompileOptions::default()).unwrap();
        let layout = compiled.program.layout().unwrap();
        let trace = dvi_program::CapturedTrace::record(&layout, 20_000);
        let config = SimConfig::micro97().with_dvi(dvi_core::DviConfig::full());

        let stock = Simulator::new(config.clone()).run(trace.replay());
        let same_geometry = SimSession::with_dcache_model(
            config.clone(),
            trace.cursor(),
            SharedTables::default(),
            Box::new(dvi_mem::CacheLevel::new(config.dcache)),
        )
        .run_to_completion();
        assert_eq!(stock, same_geometry, "same-geometry dcache swap must be invisible");

        let perfect = SimSession::with_dcache_model(
            config.clone(),
            trace.cursor(),
            SharedTables::default(),
            Box::new(dvi_mem::PerfectDcache::new(config.dcache.latency)),
        )
        .run_to_completion();
        assert_eq!(perfect.memory.l1d.misses, 0, "a perfect D-cache never misses");
        assert!(perfect.cycles <= stock.cycles, "an always-hit data side cannot be slower");
        assert_eq!(perfect.program_instrs, stock.program_instrs);
    }

    #[test]
    fn mispredictions_cost_cycles() {
        // A branch pattern driven by a pseudo-random value is hard to
        // predict; compare against the same amount of straight-line work.
        let mut b = ProgramBuilder::new();
        let mut main = ProcBuilder::new("main");
        // Create the blocks up front, in physical order, so every
        // conditional branch falls through to the block that follows it.
        let body = main.new_block();
        let taken_arm = main.new_block();
        let skip = main.new_block();
        let exit = main.new_block();

        main.emit(Instr::load_imm(r(9), 12345));
        main.emit(Instr::load_imm(r(16), 3000));

        main.switch_to(body);
        // Linear-congruential scramble; bit 16 drives the branch.
        main.emit(Instr::AluImm { op: AluOp::Mul, rd: r(9), rs: r(9), imm: 1103515245 });
        main.emit(Instr::AluImm { op: AluOp::Add, rd: r(9), rs: r(9), imm: 12345 });
        main.emit(Instr::AluImm { op: AluOp::Srl, rd: r(10), rs: r(9), imm: 16 });
        main.emit(Instr::AluImm { op: AluOp::And, rd: r(10), rs: r(10), imm: 1 });
        main.emit_branch(dvi_isa::CmpOp::Eq, r(10), ArchReg::ZERO, skip);

        main.switch_to(taken_arm);
        main.emit(Instr::AluImm { op: AluOp::Add, rd: r(11), rs: r(11), imm: 1 });
        main.emit_jump(skip);

        main.switch_to(skip);
        main.emit(Instr::AluImm { op: AluOp::Sub, rd: r(16), rs: r(16), imm: 1 });
        main.emit_branch(dvi_isa::CmpOp::Ne, r(16), ArchReg::ZERO, body);

        main.switch_to(exit);
        main.emit(Instr::Halt);
        b.add_procedure(main).unwrap();
        let prog = b.build("main").unwrap();

        let stats = run_program(&prog, SimConfig::micro97());
        assert!(
            stats.branch.direction_mispredictions > 100,
            "the scrambled branch should mispredict"
        );
        // Mispredictions hold IPC well below the machine width.
        assert!(stats.ipc() < 3.0);
    }
}
