//! Whole-matrix (trace × config) batching with sharded execution.
//!
//! A [`crate::batch::SweepRunner`] amortizes the trace-pure products
//! (decode table, branch/I-cache/DVI oracles, dependence graph, fusion
//! tables) across the members of **one** trace's configuration grid. The
//! figure drivers, however, sweep a whole experiment *matrix*: many
//! (trace, config-grid) cells, frequently naming the same captured trace
//! from several cells (fig05/09/10/11/13 all sweep the same benchmark
//! mix). Run per cell, every driver rebuilds the same shared products and
//! each cell's laggard serializes its figure.
//!
//! [`MatrixRunner`] flattens the full matrix into one job list:
//!
//! * **Trace registry** — cells are deduplicated through a
//!   fingerprint-keyed registry ([`dvi_program::CapturedTrace::fingerprint`]),
//!   so shared products are built **exactly once per distinct trace**
//!   across the entire matrix, no matter how many cells name it. Members
//!   that request the same (trace, configuration) pair are deduplicated
//!   too and fanned back out to every requesting cell.
//! * **One work-stealing queue** — all members of all traces are
//!   scheduled together: a worker that drains its own shard's queue
//!   steals from the others, so one trace's laggard member overlaps with
//!   another trace's members instead of serializing its cell.
//! * **Shards** — the matrix is partitioned round-robin into
//!   self-contained shards. In-process, each shard gets a **private
//!   replica** of its traces and shared products (the NUMA story:
//!   replicate read-only data per shard rather than sharing one copy
//!   across sockets; within a shard, products stay shared). Out of
//!   process, [`MatrixRunner::shard_jobs`] serializes each shard — trace
//!   artifacts, config slices and expected fingerprints — into a
//!   [`ShardJob`] that any worker process can execute with
//!   [`ShardJob::run`], and [`MatrixRunner::merge_shard_results`] merges
//!   the [`ShardResult`]s back in global member order.
//!
//! # Bit-identity merge contract
//!
//! Per-member statistics are a pure function of (configuration, trace,
//! shared products), and shared products leave the modelled machine
//! bit-identical (`tests/batch_equiv.rs`). Shard replication only copies
//! those products, so the merged matrix is **bit-identical** to serial
//! per-trace sweeps at any shard and thread count — `tests/matrix_equiv.rs`
//! locks matrix == per-trace-batched == serial across heterogeneous
//! grids, shard counts and thread counts, including the out-of-process
//! [`ShardJob`] round trip.
//!
//! # Durability
//!
//! With [`MatrixRunner::with_checkpoint_dir`], the runner persists one
//! [`crate::SweepCheckpoint`] per distinct trace (named by trace
//! fingerprint + member-set hash) after every member completion, and
//! resumes from matching snapshots on the next run: finished members are
//! restored verbatim, interrupted ones re-run from record 0 —
//! bit-identical, exactly as [`crate::batch::SweepRunner::resume`].
//! [`ShardJob::run`] does the same per (shard, trace), which is what lets
//! a killed shard resume instead of recomputing.

use crate::batch::{
    read_sim_config, run_member_outcome, write_sim_config, BranchOracle, DviOracle, IcacheOracle,
    MemberOutcome, ParallelJob, SharedTables, SweepRunner,
};
use crate::checkpoint::{
    config_fingerprint, read_outcome, write_outcome, MemberCheckpoint, MemberCheckpointState,
    SweepCheckpoint,
};
use crate::config::SimConfig;
use crate::frontend::StaticDecodeTable;
use dvi_mem::DcacheOracle;
use dvi_program::artifact::{xxh64, ArtifactReader, ArtifactWriter, ByteReader, ByteWriter};
use dvi_program::{ArtifactError, CapturedTrace, DepGraph, FusionTable};
use std::collections::{HashMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Artifact container identity of a serialized shard job.
pub const SHARD_JOB_MAGIC: [u8; 8] = *b"DVISHRDJ";
/// Current shard-job artifact version.
pub const SHARD_JOB_VERSION: u32 = 1;
/// Artifact container identity of a serialized shard result.
pub const SHARD_RESULT_MAGIC: [u8; 8] = *b"DVISHRDR";
/// Current shard-result artifact version.
pub const SHARD_RESULT_VERSION: u32 = 1;

/// Section tags inside a shard-job artifact.
mod job_section {
    /// Shard index/count, trace count, member count.
    pub const META: u32 = 1;
    /// One section per embedded trace: fingerprint + trace artifact bytes.
    pub const TRACE: u32 = 2;
    /// One section per member: global id, local trace, config fingerprint,
    /// full configuration.
    pub const MEMBER: u32 = 3;
}

/// Section tags inside a shard-result artifact.
mod result_section {
    /// Shard index, member count.
    pub const META: u32 = 1;
    /// One section per member: global id, config fingerprint, outcome.
    pub const MEMBER: u32 = 2;
}

/// A member's panic boundary never poisons matrix bookkeeping: the data
/// under these locks is valid after any partial update (results are
/// written whole), so a poisoned lock — a worker died, e.g. at the abort
/// test hook — just means "keep going with what's there".
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One unique (trace, configuration) member of the matrix.
#[derive(Debug, Clone)]
struct MemberEntry {
    trace_idx: usize,
    config: SimConfig,
    config_fp: u64,
}

/// The deduplicated shape of a matrix: distinct traces, unique members and
/// the mapping back to the submitted cells. Deterministic in the cell
/// list, so the in-process runner, the shard serializer and the merge all
/// agree on global member ids.
struct MatrixIndex<'a> {
    traces: Vec<&'a CapturedTrace>,
    members: Vec<MemberEntry>,
    /// Per cell, the global member id of each grid position.
    cell_members: Vec<Vec<usize>>,
    /// Per member, the cells that requested it (deduplicated, in
    /// submission order) — what a scheduling gate decides on.
    requesters: Vec<Vec<usize>>,
    trace_reuse_hits: u64,
    member_dedup_hits: u64,
    requested_members: usize,
}

impl<'a> MatrixIndex<'a> {
    fn build(cells: &[(&'a CapturedTrace, Vec<SimConfig>)]) -> MatrixIndex<'a> {
        let mut traces: Vec<&'a CapturedTrace> = Vec::new();
        let mut trace_by_fp: HashMap<u64, usize> = HashMap::new();
        let mut members: Vec<MemberEntry> = Vec::new();
        let mut member_by_key: HashMap<(usize, u64), usize> = HashMap::new();
        let mut cell_members = Vec::with_capacity(cells.len());
        let mut requesters: Vec<Vec<usize>> = Vec::new();
        let mut trace_reuse_hits = 0u64;
        let mut member_dedup_hits = 0u64;
        let mut requested_members = 0usize;
        for (cell, (trace, configs)) in cells.iter().enumerate() {
            let fp = trace.fingerprint();
            let trace_idx = match trace_by_fp.get(&fp) {
                Some(&idx) => {
                    trace_reuse_hits += 1;
                    idx
                }
                None => {
                    traces.push(trace);
                    trace_by_fp.insert(fp, traces.len() - 1);
                    traces.len() - 1
                }
            };
            let mut ids = Vec::with_capacity(configs.len());
            for config in configs {
                requested_members += 1;
                let config_fp = config_fingerprint(config);
                let id = match member_by_key.get(&(trace_idx, config_fp)) {
                    Some(&id) => {
                        member_dedup_hits += 1;
                        id
                    }
                    None => {
                        members.push(MemberEntry { trace_idx, config: config.clone(), config_fp });
                        requesters.push(Vec::new());
                        member_by_key.insert((trace_idx, config_fp), members.len() - 1);
                        members.len() - 1
                    }
                };
                if requesters[id].last() != Some(&cell) {
                    requesters[id].push(cell);
                }
                ids.push(id);
            }
            cell_members.push(ids);
        }
        MatrixIndex {
            traces,
            members,
            cell_members,
            requesters,
            trace_reuse_hits,
            member_dedup_hits,
            requested_members,
        }
    }

    /// Global member ids belonging to trace `t`, in global order.
    fn trace_members(&self, t: usize) -> Vec<usize> {
        (0..self.members.len()).filter(|&i| self.members[i].trace_idx == t).collect()
    }

    /// Identity of trace `t`'s member set (ids + config fingerprints):
    /// binds a matrix checkpoint to the exact member list it was taken
    /// over, so a grid change invalidates the snapshot.
    fn member_set_hash(&self, t: usize) -> u64 {
        let mut w = ByteWriter::new();
        for id in self.trace_members(t) {
            w.put_u64(id as u64);
            w.put_u64(self.members[id].config_fp);
        }
        xxh64(&w.into_bytes(), 0)
    }

    /// Fans per-member results back out to the submitted cells, cloning a
    /// deduplicated member's outcome into every requesting grid slot.
    fn fan_out(&self, results: &[Option<MemberOutcome>]) -> Vec<Vec<Option<MemberOutcome>>> {
        self.cell_members
            .iter()
            .map(|ids| ids.iter().map(|&i| results[i].clone()).collect())
            .collect()
    }
}

/// Per-shard replica pools: deep-copies every `Arc`ed shared product
/// exactly once per shard, keyed by source-`Arc` identity, so
/// *within-shard* sharing is preserved (members of one trace still share
/// one replica) while *cross-shard* sharing is severed (each shard owns a
/// private copy of the read-only data — the NUMA replication story).
struct TableReplicator {
    decode: ArcPool<StaticDecodeTable>,
    branches: ArcPool<BranchOracle>,
    icache: ArcPool<IcacheOracle>,
    depgraph: ArcPool<DepGraph>,
    dvi: ArcPool<DviOracle>,
    dcache: ArcPool<DcacheOracle>,
    fusion: ArcPool<FusionTable>,
}

struct ArcPool<T> {
    map: HashMap<usize, std::sync::Arc<T>>,
}

impl<T: Clone> ArcPool<T> {
    fn new() -> ArcPool<T> {
        ArcPool { map: HashMap::new() }
    }

    fn replicate(&mut self, src: &Option<std::sync::Arc<T>>) -> Option<std::sync::Arc<T>> {
        src.as_ref().map(|arc| {
            self.map
                .entry(std::sync::Arc::as_ptr(arc) as usize)
                .or_insert_with(|| std::sync::Arc::new(T::clone(arc)))
                .clone()
        })
    }
}

impl TableReplicator {
    fn new() -> TableReplicator {
        TableReplicator {
            decode: ArcPool::new(),
            branches: ArcPool::new(),
            icache: ArcPool::new(),
            depgraph: ArcPool::new(),
            dvi: ArcPool::new(),
            dcache: ArcPool::new(),
            fusion: ArcPool::new(),
        }
    }

    fn replicate(&mut self, tables: &SharedTables) -> SharedTables {
        SharedTables {
            decode: self.decode.replicate(&tables.decode),
            branches: self.branches.replicate(&tables.branches),
            icache: self.icache.replicate(&tables.icache),
            depgraph: self.depgraph.replicate(&tables.depgraph),
            dvi: self.dvi.replicate(&tables.dvi),
            dcache: self.dcache.replicate(&tables.dcache),
            fusion: self.fusion.replicate(&tables.fusion),
        }
    }
}

/// Observability counters of one matrix run (surfaced through the sweep
/// service's `/metrics`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatrixReport {
    /// Cells submitted.
    pub cells: usize,
    /// Grid slots requested across all cells (before deduplication).
    pub requested_members: usize,
    /// Unique (trace, configuration) members actually scheduled.
    pub unique_members: usize,
    /// Distinct traces after fingerprint-keyed registry deduplication.
    pub distinct_traces: usize,
    /// Cells whose trace was already registered by an earlier cell.
    pub trace_reuse_hits: u64,
    /// Grid slots that mapped onto an already-registered member.
    pub member_dedup_hits: u64,
    /// Shared-product build passes actually run — exactly one per distinct
    /// trace with at least one non-restored member.
    pub shared_builds: u64,
    /// Requested grid slots that consumed shared products without
    /// triggering a build pass (`requested_members - shared_builds`).
    pub build_reuse_hits: u64,
    /// Worker threads used.
    pub threads: usize,
    /// Shards the matrix was partitioned into.
    pub shards: usize,
    /// Unique members assigned to each shard.
    pub shard_members: Vec<usize>,
    /// Members each shard's home workers stole from *other* shards'
    /// queues (in-process runs only; zero after an out-of-process merge).
    pub shard_steals: Vec<u64>,
    /// Members skipped by the scheduling gate (their cell slots are
    /// `None`).
    pub skipped_members: u64,
    /// Members restored verbatim from matrix checkpoints.
    pub resumed_members: u64,
}

/// The result of a matrix run: per-cell outcomes in submission/grid order
/// plus the run's [`MatrixReport`]. A slot is `None` only when a
/// scheduling gate skipped the member (every requesting cell declined it).
#[derive(Debug, Clone)]
pub struct MatrixOutcome {
    /// Per submitted cell, per grid position, the member's outcome.
    pub cells: Vec<Vec<Option<MemberOutcome>>>,
    /// Scheduler observability counters.
    pub report: MatrixReport,
}

impl MatrixOutcome {
    /// Unwraps the per-cell outcomes of an ungated run. Gate-skipped
    /// members (possible only with
    /// [`MatrixRunner::with_cell_gate`]) surface as
    /// [`MemberOutcome::Panicked`] with an explanatory payload rather
    /// than silently vanishing from the grid.
    #[must_use]
    pub fn into_cells(self) -> Vec<Vec<MemberOutcome>> {
        self.cells
            .into_iter()
            .map(|cell| {
                cell.into_iter()
                    .map(|slot| {
                        slot.unwrap_or(MemberOutcome::Panicked {
                            payload: "member skipped by the matrix scheduling gate".into(),
                        })
                    })
                    .collect()
            })
            .collect()
    }
}

/// Whether a shard-local worker owns a shared trace reference or a
/// shard-private replica.
#[derive(Clone, Copy)]
enum TraceSlot {
    /// Index into the registry's borrowed traces (single-shard runs).
    Shared(usize),
    /// Index into the run's shard-private replicas.
    Replica(usize),
}

/// Whole-matrix sweep runner — see the module documentation.
pub struct MatrixRunner<'a> {
    cells: Vec<(&'a CapturedTrace, Vec<SimConfig>)>,
    threads: usize,
    shards: usize,
    checkpoint_dir: Option<PathBuf>,
    abort_after_members: Option<usize>,
    #[allow(clippy::type_complexity)]
    gate: Option<Box<dyn Fn(&[usize]) -> bool + Send + Sync + 'a>>,
}

impl<'a> MatrixRunner<'a> {
    /// A matrix over `cells`, each one (trace, configuration grid). The
    /// default execution is one shard with all available host threads.
    #[must_use]
    pub fn new(cells: Vec<(&'a CapturedTrace, Vec<SimConfig>)>) -> MatrixRunner<'a> {
        MatrixRunner {
            cells,
            threads: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            shards: 1,
            checkpoint_dir: None,
            abort_after_members: None,
            gate: None,
        }
    }

    /// Worker thread count (clamped to `1..=members` at run time).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Shard count (clamped to `1..=members` at run time). Shards above 1
    /// replicate each shard's traces and shared products privately.
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Persist one checkpoint per distinct trace under `dir` after every
    /// member completion, and resume from matching snapshots at the next
    /// run. Snapshots are removed when the run completes.
    #[must_use]
    pub fn with_checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// Test hook for the kill/resume suite: every worker panics once `n`
    /// members have completed, after their checkpoints were written —
    /// simulating a crash mid-matrix.
    #[must_use]
    pub fn with_abort_after_members(mut self, n: usize) -> Self {
        self.abort_after_members = Some(n);
        self
    }

    /// Cooperative scheduling gate, consulted when a worker claims a
    /// member: the callback receives the member's requesting cell indices
    /// and returns whether to run it. A declined member's cell slots stay
    /// `None` — this is how the sweep service skips the members of
    /// cancelled jobs at the next scheduling turn without tearing down
    /// the matrix.
    #[must_use]
    pub fn with_cell_gate(mut self, gate: impl Fn(&[usize]) -> bool + Send + Sync + 'a) -> Self {
        self.gate = Some(Box::new(gate));
        self
    }

    /// Checkpoint path of trace `t` under `dir`.
    fn checkpoint_path(dir: &Path, trace_fp: u64, set_hash: u64) -> PathBuf {
        dir.join(format!("matrix-{trace_fp:016x}-{set_hash:016x}.dviswpck"))
    }

    /// Runs the whole matrix in-process and returns per-cell outcomes.
    ///
    /// # Panics
    ///
    /// Panics at the [`MatrixRunner::with_abort_after_members`] test hook
    /// (the checkpoints written so far survive for resume), or if a
    /// worker thread dies outside every member panic boundary.
    #[must_use]
    pub fn run(self) -> MatrixOutcome {
        let index = MatrixIndex::build(&self.cells);
        let n = index.members.len();
        let shards = self.shards.clamp(1, n.max(1));
        let threads = self.threads.clamp(1, n.max(1));

        // Resume: restore finished members from any valid per-trace
        // snapshot before deciding what to build.
        let mut restored: Vec<Option<MemberOutcome>> = vec![None; n];
        let mut trace_paths: Vec<Option<PathBuf>> = vec![None; index.traces.len()];
        if let Some(dir) = &self.checkpoint_dir {
            let _ = std::fs::create_dir_all(dir);
            for (t, slot) in trace_paths.iter_mut().enumerate() {
                let ids = index.trace_members(t);
                if ids.is_empty() {
                    continue;
                }
                let path = Self::checkpoint_path(
                    dir,
                    index.traces[t].fingerprint(),
                    index.member_set_hash(t),
                );
                if let Ok(snapshot) = SweepCheckpoint::load(&path) {
                    let binds =
                        snapshot.trace_fingerprint == index.traces[t].fingerprint()
                            && snapshot.members.len() == ids.len()
                            && snapshot.members.iter().zip(&ids).all(|(m, &id)| {
                                m.config_fingerprint == index.members[id].config_fp
                            });
                    if binds {
                        for (member, &id) in snapshot.members.iter().zip(&ids) {
                            if let MemberCheckpointState::Done(outcome) = &member.state {
                                restored[id] = Some((**outcome).clone());
                            }
                        }
                    }
                }
                *slot = Some(path);
            }
        }
        let resumed_members = restored.iter().filter(|r| r.is_some()).count() as u64;

        // Build shared products exactly once per distinct trace that
        // still has work, and flatten every member into a standalone job.
        let mut jobs: Vec<Option<ParallelJob>> = vec![None; n];
        let mut shared_builds = 0u64;
        for t in 0..index.traces.len() {
            let ids = index.trace_members(t);
            if ids.is_empty() {
                continue;
            }
            if ids.iter().all(|&id| restored[id].is_some()) {
                // Fully restored: pass the outcomes through without
                // paying for a shared-product build.
                for &id in &ids {
                    jobs[id] = Some(ParallelJob {
                        config: index.members[id].config.clone(),
                        tables: SharedTables::default(),
                        degraded: None,
                        fault: None,
                        done: restored[id].clone(),
                    });
                }
                continue;
            }
            let configs: Vec<SimConfig> =
                ids.iter().map(|&id| index.members[id].config.clone()).collect();
            shared_builds += 1;
            let (_trace, trace_jobs) =
                SweepRunner::new(index.traces[t], configs).into_parallel_jobs();
            for (&id, mut job) in ids.iter().zip(trace_jobs) {
                if let Some(done) = &restored[id] {
                    job.done = Some(done.clone());
                }
                jobs[id] = Some(job);
            }
        }
        let mut jobs: Vec<ParallelJob> = jobs
            .into_iter()
            .map(|j| j.expect("every member belongs to exactly one trace"))
            .collect();

        // Shard assignment (round-robin over global member order) and,
        // above one shard, per-shard replication of traces and shared
        // products.
        let shard_of: Vec<usize> = (0..n).map(|i| i % shards).collect();
        let mut replicas: Vec<CapturedTrace> = Vec::new();
        let mut member_trace: Vec<TraceSlot> = Vec::with_capacity(n);
        if shards > 1 {
            let mut replica_of: HashMap<(usize, usize), usize> = HashMap::new();
            let mut replicators: Vec<TableReplicator> =
                (0..shards).map(|_| TableReplicator::new()).collect();
            for i in 0..n {
                let (s, t) = (shard_of[i], index.members[i].trace_idx);
                let r = *replica_of.entry((s, t)).or_insert_with(|| {
                    replicas.push(index.traces[t].clone());
                    replicas.len() - 1
                });
                member_trace.push(TraceSlot::Replica(r));
                jobs[i].tables = replicators[s].replicate(&jobs[i].tables);
            }
        } else {
            member_trace.extend((0..n).map(|i| TraceSlot::Shared(index.members[i].trace_idx)));
        }

        // One queue per shard; workers drain their home shard first and
        // steal from the others once it is empty.
        let queues: Vec<Mutex<VecDeque<usize>>> = (0..shards)
            .map(|s| Mutex::new((0..n).filter(|&i| shard_of[i] == s).collect()))
            .collect();
        let steals: Vec<AtomicU64> = (0..shards).map(|_| AtomicU64::new(0)).collect();
        let shard_members: Vec<usize> =
            (0..shards).map(|s| shard_of.iter().filter(|&&x| x == s).count()).collect();

        struct RunState {
            results: Vec<Option<MemberOutcome>>,
            completed: usize,
            skipped: u64,
        }
        let state = Mutex::new(RunState { results: vec![None; n], completed: 0, skipped: 0 });
        let jobs = &jobs;
        let index_ref = &index;
        let member_trace = &member_trace;
        let replicas = &replicas;
        let queues = &queues;
        let steals = &steals;
        let state_ref = &state;
        let trace_paths = &trace_paths;
        let gate = self.gate.as_deref();
        let abort_after = self.abort_after_members;

        std::thread::scope(|scope| {
            for w in 0..threads {
                let home = w % shards;
                scope.spawn(move || loop {
                    if let Some(limit) = abort_after {
                        assert!(
                            lock(state_ref).completed < limit,
                            "matrix abort test hook: {limit} members completed"
                        );
                    }
                    // Claim: home queue front first, then steal from the
                    // other shards' queue backs.
                    let mut claimed = lock(&queues[home]).pop_front();
                    if claimed.is_none() {
                        for off in 1..shards {
                            let victim = (home + off) % shards;
                            if let Some(i) = lock(&queues[victim]).pop_back() {
                                steals[home].fetch_add(1, Ordering::Relaxed);
                                claimed = Some(i);
                                break;
                            }
                        }
                    }
                    let Some(i) = claimed else { break };
                    if let Some(gate) = gate {
                        if !gate(&index_ref.requesters[i]) {
                            let mut st = lock(state_ref);
                            st.skipped += 1;
                            st.completed += 1;
                            continue;
                        }
                    }
                    let trace: &CapturedTrace = match member_trace[i] {
                        TraceSlot::Shared(t) => index_ref.traces[t],
                        TraceSlot::Replica(r) => &replicas[r],
                    };
                    let outcome = run_member_outcome(trace, jobs[i].clone());
                    let mut st = lock(state_ref);
                    st.results[i] = Some(outcome);
                    st.completed += 1;
                    let t = index_ref.members[i].trace_idx;
                    if let Some(path) = &trace_paths[t] {
                        write_trace_checkpoint(path, index_ref, t, &st.results);
                    }
                });
            }
        });

        // The run completed: its snapshots have served their purpose.
        for path in trace_paths.iter().flatten() {
            let _ = std::fs::remove_file(path);
        }

        let st = lock(&state);
        let report = MatrixReport {
            cells: index.cell_members.len(),
            requested_members: index.requested_members,
            unique_members: n,
            distinct_traces: index.traces.len(),
            trace_reuse_hits: index.trace_reuse_hits,
            member_dedup_hits: index.member_dedup_hits,
            shared_builds,
            build_reuse_hits: (index.requested_members as u64).saturating_sub(shared_builds),
            threads,
            shards,
            shard_members,
            shard_steals: steals.iter().map(|s| s.load(Ordering::Relaxed)).collect(),
            skipped_members: st.skipped,
            resumed_members,
        };
        let cells = index.fan_out(&st.results);
        drop(st);
        MatrixOutcome { cells, report }
    }

    /// Serializes the matrix into self-contained shard jobs — one per
    /// shard, each embedding the trace artifacts it needs, its config
    /// slice and the expected fingerprints — for out-of-process execution
    /// ([`ShardJob::run`], e.g. via the service CLI's `run-shard`).
    #[must_use]
    pub fn shard_jobs(&self) -> Vec<ShardJob> {
        let index = MatrixIndex::build(&self.cells);
        let n = index.members.len();
        let shards = self.shards.clamp(1, n.max(1));
        let mut trace_bytes: Vec<Option<Vec<u8>>> = vec![None; index.traces.len()];
        (0..shards)
            .map(|s| {
                let ids: Vec<usize> = (0..n).filter(|i| i % shards == s).collect();
                let mut local_traces: Vec<ShardTrace> = Vec::new();
                let mut local_of: HashMap<usize, usize> = HashMap::new();
                let members = ids
                    .iter()
                    .map(|&id| {
                        let entry = &index.members[id];
                        let local_trace = *local_of.entry(entry.trace_idx).or_insert_with(|| {
                            let bytes = trace_bytes[entry.trace_idx]
                                .get_or_insert_with(|| index.traces[entry.trace_idx].to_bytes())
                                .clone();
                            local_traces.push(ShardTrace {
                                fingerprint: index.traces[entry.trace_idx].fingerprint(),
                                bytes,
                            });
                            local_traces.len() - 1
                        });
                        ShardMember {
                            global_id: id as u64,
                            local_trace,
                            config: entry.config.clone(),
                            config_fp: entry.config_fp,
                        }
                    })
                    .collect();
                ShardJob {
                    shard_index: s as u64,
                    shard_count: shards as u64,
                    traces: local_traces,
                    members,
                }
            })
            .collect()
    }

    /// Merges out-of-process [`ShardResult`]s back into per-cell outcomes
    /// in global member order — the bit-identity merge contract: the
    /// merged grid equals the in-process run member for member
    /// (`tests/matrix_equiv.rs`).
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Malformed`] when a result names an unknown member,
    /// disagrees with the matrix on a member's config fingerprint,
    /// duplicates a member, or leaves a member unreported.
    pub fn merge_shard_results(
        &self,
        results: &[ShardResult],
    ) -> Result<MatrixOutcome, ArtifactError> {
        let index = MatrixIndex::build(&self.cells);
        let n = index.members.len();
        let shards = self.shards.clamp(1, n.max(1));
        let mut merged: Vec<Option<MemberOutcome>> = vec![None; n];
        for result in results {
            for member in &result.members {
                let id = usize::try_from(member.global_id).ok().filter(|&id| id < n).ok_or_else(
                    || ArtifactError::Malformed {
                        context: format!("shard result names unknown member {}", member.global_id),
                    },
                )?;
                if index.members[id].config_fp != member.config_fp {
                    return Err(ArtifactError::Malformed {
                        context: format!(
                            "shard result member {id} config fingerprint mismatch: \
                             expected {:016x}, found {:016x}",
                            index.members[id].config_fp, member.config_fp
                        ),
                    });
                }
                if merged[id].is_some() {
                    return Err(ArtifactError::Malformed {
                        context: format!("shard results report member {id} twice"),
                    });
                }
                merged[id] = Some(member.outcome.clone());
            }
        }
        if let Some(missing) = merged.iter().position(Option::is_none) {
            return Err(ArtifactError::Malformed {
                context: format!("shard results leave member {missing} unreported"),
            });
        }
        // Out of process, every shard builds its own shared products — the
        // replication story — so builds count one per (shard, trace) pair.
        let mut shard_builds = 0u64;
        let mut shard_members = vec![0usize; shards];
        for (s, count) in shard_members.iter_mut().enumerate() {
            let mut seen: Vec<bool> = vec![false; index.traces.len()];
            for i in (0..n).filter(|i| i % shards == s) {
                *count += 1;
                seen[index.members[i].trace_idx] = true;
            }
            shard_builds += seen.iter().filter(|&&b| b).count() as u64;
        }
        let report = MatrixReport {
            cells: index.cell_members.len(),
            requested_members: index.requested_members,
            unique_members: n,
            distinct_traces: index.traces.len(),
            trace_reuse_hits: index.trace_reuse_hits,
            member_dedup_hits: index.member_dedup_hits,
            shared_builds: shard_builds,
            build_reuse_hits: (index.requested_members as u64).saturating_sub(shard_builds),
            threads: 0,
            shards,
            shard_members,
            shard_steals: vec![0; shards],
            skipped_members: 0,
            resumed_members: 0,
        };
        Ok(MatrixOutcome { cells: index.fan_out(&merged), report })
    }
}

/// Writes trace `t`'s matrix checkpoint: finished members as `Done`,
/// everything else as diagnostic `InFlight` (resume re-runs them from
/// record 0, bit-identically).
fn write_trace_checkpoint(
    path: &Path,
    index: &MatrixIndex<'_>,
    t: usize,
    results: &[Option<MemberOutcome>],
) {
    let ids = index.trace_members(t);
    let done = ids.iter().filter(|&&id| results[id].is_some()).count() as u64;
    let members = ids
        .iter()
        .map(|&id| MemberCheckpoint {
            config_fingerprint: index.members[id].config_fp,
            state: match &results[id] {
                Some(outcome) => MemberCheckpointState::Done(Box::new(outcome.clone())),
                None => MemberCheckpointState::InFlight { fetched: 0 },
            },
        })
        .collect();
    let snapshot =
        SweepCheckpoint { trace_fingerprint: index.traces[t].fingerprint(), turns: done, members };
    let _ = snapshot.save(path);
}

/// One embedded trace of a [`ShardJob`]: the full trace artifact plus the
/// fingerprint the decoded trace must reproduce.
#[derive(Debug, Clone)]
struct ShardTrace {
    fingerprint: u64,
    bytes: Vec<u8>,
}

/// One member of a [`ShardJob`].
#[derive(Debug, Clone)]
struct ShardMember {
    global_id: u64,
    local_trace: usize,
    config: SimConfig,
    config_fp: u64,
}

/// A self-contained, serializable slice of a matrix: the trace artifacts,
/// configurations and expected fingerprints one shard needs to run with
/// no other context — the unit that later spreads across machines. Built
/// by [`MatrixRunner::shard_jobs`]; executed by [`ShardJob::run`] (in any
/// process); results merged by [`MatrixRunner::merge_shard_results`].
#[derive(Debug, Clone)]
pub struct ShardJob {
    shard_index: u64,
    shard_count: u64,
    traces: Vec<ShardTrace>,
    members: Vec<ShardMember>,
}

impl ShardJob {
    /// This shard's index within its matrix partition.
    #[must_use]
    pub fn shard_index(&self) -> u64 {
        self.shard_index
    }

    /// Total shards the matrix was partitioned into.
    #[must_use]
    pub fn shard_count(&self) -> u64 {
        self.shard_count
    }

    /// Members assigned to this shard.
    #[must_use]
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// Distinct traces embedded in this shard.
    #[must_use]
    pub fn trace_count(&self) -> usize {
        self.traces.len()
    }

    /// Serializes the job into a checksummed artifact container.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ArtifactWriter::new(SHARD_JOB_MAGIC, SHARD_JOB_VERSION);
        let mut meta = ByteWriter::new();
        meta.put_u64(self.shard_index);
        meta.put_u64(self.shard_count);
        meta.put_u64(self.traces.len() as u64);
        meta.put_u64(self.members.len() as u64);
        w.section(job_section::META, meta.into_bytes());
        for trace in &self.traces {
            let mut b = ByteWriter::new();
            b.put_u64(trace.fingerprint);
            b.put_u64(trace.bytes.len() as u64);
            b.put_bytes(&trace.bytes);
            w.section(job_section::TRACE, b.into_bytes());
        }
        for member in &self.members {
            let mut b = ByteWriter::new();
            b.put_u64(member.global_id);
            b.put_u64(member.local_trace as u64);
            b.put_u64(member.config_fp);
            write_sim_config(&mut b, &member.config);
            w.section(job_section::MEMBER, b.into_bytes());
        }
        w.to_bytes()
    }

    /// Parses a job serialized by [`ShardJob::to_bytes`], verifying the
    /// container checksums, the member/trace cross-references and each
    /// member's configuration fingerprint.
    ///
    /// # Errors
    ///
    /// Any [`ArtifactError`] from the container, plus
    /// [`ArtifactError::Malformed`] on internal inconsistency.
    pub fn from_bytes(bytes: &[u8]) -> Result<ShardJob, ArtifactError> {
        let reader = ArtifactReader::parse(bytes, SHARD_JOB_MAGIC, SHARD_JOB_VERSION)?;
        let mut meta = ByteReader::new(reader.section(job_section::META)?, "shard job meta");
        let shard_index = meta.u64()?;
        let shard_count = meta.u64()?;
        let trace_count = meta.count()?;
        let member_count = meta.count()?;
        meta.finish()?;
        let mut traces = Vec::with_capacity(trace_count);
        for payload in reader.sections_with_tag(job_section::TRACE) {
            let mut b = ByteReader::new(payload, "shard job trace");
            let fingerprint = b.u64()?;
            let len = b.count()?;
            let bytes = b.bytes(len)?.to_vec();
            b.finish()?;
            traces.push(ShardTrace { fingerprint, bytes });
        }
        if traces.len() != trace_count {
            return Err(ArtifactError::Malformed {
                context: format!(
                    "shard job meta promises {trace_count} traces, found {}",
                    traces.len()
                ),
            });
        }
        let mut members = Vec::with_capacity(member_count);
        for payload in reader.sections_with_tag(job_section::MEMBER) {
            let mut b = ByteReader::new(payload, "shard job member");
            let global_id = b.u64()?;
            let local_trace = b.count()?;
            let config_fp = b.u64()?;
            let config = read_sim_config(&mut b)?;
            b.finish()?;
            if local_trace >= traces.len() {
                return Err(ArtifactError::Malformed {
                    context: format!("shard job member {global_id} names missing trace"),
                });
            }
            if config_fingerprint(&config) != config_fp {
                return Err(ArtifactError::Malformed {
                    context: format!(
                        "shard job member {global_id} configuration fingerprint mismatch"
                    ),
                });
            }
            members.push(ShardMember { global_id, local_trace, config, config_fp });
        }
        if members.len() != member_count {
            return Err(ArtifactError::Malformed {
                context: format!(
                    "shard job meta promises {member_count} members, found {}",
                    members.len()
                ),
            });
        }
        Ok(ShardJob { shard_index, shard_count, traces, members })
    }

    /// Atomically writes the job to `path`.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Io`] on filesystem failure.
    pub fn save(&self, path: &Path) -> Result<(), ArtifactError> {
        let bytes = self.to_bytes();
        let io = |e: std::io::Error| ArtifactError::Io(e.to_string());
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        std::fs::write(&tmp, &bytes).map_err(io)?;
        std::fs::rename(&tmp, path).map_err(io)?;
        Ok(())
    }

    /// Loads a job saved by [`ShardJob::save`].
    ///
    /// # Errors
    ///
    /// As [`ShardJob::from_bytes`], plus [`ArtifactError::Io`].
    pub fn load(path: &Path) -> Result<ShardJob, ArtifactError> {
        let bytes = std::fs::read(path)
            .map_err(|e| ArtifactError::Io(format!("reading {}: {e}", path.display())))?;
        ShardJob::from_bytes(&bytes)
    }

    /// Checkpoint path of this shard's trace `fp` under `dir`.
    fn checkpoint_path(&self, dir: &Path, trace_fp: u64) -> PathBuf {
        dir.join(format!("shard{:04}-{trace_fp:016x}.dviswpck", self.shard_index))
    }

    /// Executes the shard: decodes and fingerprint-verifies its traces,
    /// builds shared products once per embedded trace (the per-shard
    /// replication contract), and runs every member inside the standard
    /// panic boundary. With `checkpoint_dir`, progress persists per
    /// (shard, trace) after every member and a rerun resumes finished
    /// members verbatim — a killed shard resumes bit-identically.
    ///
    /// # Errors
    ///
    /// [`ArtifactError`] when an embedded trace fails to decode or does
    /// not reproduce its expected fingerprint.
    pub fn run(&self, checkpoint_dir: Option<&Path>) -> Result<ShardResult, ArtifactError> {
        let mut traces = Vec::with_capacity(self.traces.len());
        for shard_trace in &self.traces {
            let trace = CapturedTrace::from_bytes(&shard_trace.bytes)?;
            if trace.fingerprint() != shard_trace.fingerprint {
                return Err(ArtifactError::Malformed {
                    context: format!(
                        "shard {} trace fingerprint mismatch: expected {:016x}, decoded {:016x}",
                        self.shard_index,
                        shard_trace.fingerprint,
                        trace.fingerprint()
                    ),
                });
            }
            traces.push(trace);
        }
        if let Some(dir) = checkpoint_dir {
            let _ = std::fs::create_dir_all(dir);
        }
        let mut outcomes: Vec<Option<MemberOutcome>> = vec![None; self.members.len()];
        for (t, trace) in traces.iter().enumerate() {
            let positions: Vec<usize> =
                (0..self.members.len()).filter(|&k| self.members[k].local_trace == t).collect();
            if positions.is_empty() {
                continue;
            }
            let path = checkpoint_dir.map(|dir| self.checkpoint_path(dir, trace.fingerprint()));
            let mut restored: Vec<Option<MemberOutcome>> = vec![None; positions.len()];
            if let Some(path) = &path {
                if let Ok(snapshot) = SweepCheckpoint::load(path) {
                    let binds = snapshot.trace_fingerprint == trace.fingerprint()
                        && snapshot.members.len() == positions.len()
                        && snapshot
                            .members
                            .iter()
                            .zip(&positions)
                            .all(|(m, &k)| m.config_fingerprint == self.members[k].config_fp);
                    if binds {
                        for (member, slot) in snapshot.members.iter().zip(&mut restored) {
                            if let MemberCheckpointState::Done(outcome) = &member.state {
                                *slot = Some((**outcome).clone());
                            }
                        }
                    }
                }
            }
            let configs: Vec<SimConfig> =
                positions.iter().map(|&k| self.members[k].config.clone()).collect();
            let (_trace, mut jobs) = SweepRunner::new(trace, configs).into_parallel_jobs();
            for (job, done) in jobs.iter_mut().zip(&restored) {
                if let Some(done) = done {
                    job.done = Some(done.clone());
                }
            }
            for (slot, job) in positions.iter().zip(jobs) {
                outcomes[*slot] = Some(run_member_outcome(trace, job));
                if let Some(path) = &path {
                    let members = positions
                        .iter()
                        .map(|&k| MemberCheckpoint {
                            config_fingerprint: self.members[k].config_fp,
                            state: match &outcomes[k] {
                                Some(outcome) => {
                                    MemberCheckpointState::Done(Box::new(outcome.clone()))
                                }
                                None => MemberCheckpointState::InFlight { fetched: 0 },
                            },
                        })
                        .collect();
                    let done = positions.iter().filter(|&&k| outcomes[k].is_some()).count() as u64;
                    let snapshot = SweepCheckpoint {
                        trace_fingerprint: trace.fingerprint(),
                        turns: done,
                        members,
                    };
                    let _ = snapshot.save(path);
                }
            }
            if let Some(path) = &path {
                let _ = std::fs::remove_file(path);
            }
        }
        let members = self
            .members
            .iter()
            .zip(outcomes)
            .map(|(member, outcome)| ShardMemberResult {
                global_id: member.global_id,
                config_fp: member.config_fp,
                outcome: outcome.expect("every shard member ran or was restored"),
            })
            .collect();
        Ok(ShardResult { shard_index: self.shard_index, members })
    }
}

/// One member's entry in a [`ShardResult`].
#[derive(Debug, Clone)]
pub struct ShardMemberResult {
    /// The member's global id within its matrix.
    pub global_id: u64,
    /// Fingerprint of the member's configuration, re-checked at merge.
    pub config_fp: u64,
    /// The member's outcome.
    pub outcome: MemberOutcome,
}

/// The serializable result of one [`ShardJob::run`]: per-member outcomes
/// keyed by global matrix id, merged back into cell order by
/// [`MatrixRunner::merge_shard_results`].
#[derive(Debug, Clone)]
pub struct ShardResult {
    shard_index: u64,
    /// Per-member outcomes, in shard member order.
    pub members: Vec<ShardMemberResult>,
}

impl ShardResult {
    /// The shard this result came from.
    #[must_use]
    pub fn shard_index(&self) -> u64 {
        self.shard_index
    }

    /// Serializes the result into a checksummed artifact container.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ArtifactWriter::new(SHARD_RESULT_MAGIC, SHARD_RESULT_VERSION);
        let mut meta = ByteWriter::new();
        meta.put_u64(self.shard_index);
        meta.put_u64(self.members.len() as u64);
        w.section(result_section::META, meta.into_bytes());
        for member in &self.members {
            let mut b = ByteWriter::new();
            b.put_u64(member.global_id);
            b.put_u64(member.config_fp);
            write_outcome(&mut b, &member.outcome);
            w.section(result_section::MEMBER, b.into_bytes());
        }
        w.to_bytes()
    }

    /// Parses a result serialized by [`ShardResult::to_bytes`].
    ///
    /// # Errors
    ///
    /// Any [`ArtifactError`] from the container or a malformed member
    /// payload.
    pub fn from_bytes(bytes: &[u8]) -> Result<ShardResult, ArtifactError> {
        let reader = ArtifactReader::parse(bytes, SHARD_RESULT_MAGIC, SHARD_RESULT_VERSION)?;
        let mut meta = ByteReader::new(reader.section(result_section::META)?, "shard result meta");
        let shard_index = meta.u64()?;
        let member_count = meta.count()?;
        meta.finish()?;
        let mut members = Vec::with_capacity(member_count);
        for payload in reader.sections_with_tag(result_section::MEMBER) {
            let mut b = ByteReader::new(payload, "shard result member");
            let global_id = b.u64()?;
            let config_fp = b.u64()?;
            let outcome = read_outcome(&mut b)?;
            b.finish()?;
            members.push(ShardMemberResult { global_id, config_fp, outcome });
        }
        if members.len() != member_count {
            return Err(ArtifactError::Malformed {
                context: format!(
                    "shard result meta promises {member_count} members, found {}",
                    members.len()
                ),
            });
        }
        Ok(ShardResult { shard_index, members })
    }

    /// Atomically writes the result to `path`.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Io`] on filesystem failure.
    pub fn save(&self, path: &Path) -> Result<(), ArtifactError> {
        let io = |e: std::io::Error| ArtifactError::Io(e.to_string());
        let bytes = self.to_bytes();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        std::fs::write(&tmp, &bytes).map_err(io)?;
        std::fs::rename(&tmp, path).map_err(io)?;
        Ok(())
    }

    /// Loads a result saved by [`ShardResult::save`].
    ///
    /// # Errors
    ///
    /// As [`ShardResult::from_bytes`], plus [`ArtifactError::Io`].
    pub fn load(path: &Path) -> Result<ShardResult, ArtifactError> {
        let bytes = std::fs::read(path)
            .map_err(|e| ArtifactError::Io(format!("reading {}: {e}", path.display())))?;
        ShardResult::from_bytes(&bytes)
    }
}
