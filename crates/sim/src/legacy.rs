//! The seed's original pipeline back end, preserved as the throughput
//! baseline.
//!
//! This is the simulator back end as it stood before the event-driven
//! rewrite: a `VecDeque` instruction window whose entries are constructed
//! (and whose `Vec` reclaim lists are allocated) per dispatch, and
//! writeback/issue implemented as full-window scans every cycle. It models
//! the *same machine* cycle-for-cycle — `tests/scheduler_equiv.rs` asserts
//! its `SimStats` are bit-identical to both current schedulers — so the
//! `sim_throughput` bench can report an apples-to-apples host-speed
//! comparison against the seed core (pair it with
//! `Interpreter::with_sparse_memory` for the original interpreter memory
//! as well).
//!
//! The in-order front end (fetch and the per-instruction rename/dispatch
//! decisions) is the shared, memoized [`crate::frontend::FrontEnd`]: the
//! stages were verbatim copies of the main pipeline's and are behaviourally
//! identical, so sharing them removes the duplication without perturbing
//! the modelled machine. Only the *back end* here intentionally tracks the
//! seed design (full-window scans, per-dispatch allocation); do not extend
//! it.

use crate::config::SimConfig;
use crate::dvi_engine::{DviEngine, DviModel};
use crate::frontend::{Dispatch, FetchPredictor, FrontEnd};
use crate::fu::FuPool;
use crate::rename::{PhysReg, RenameState};
use crate::stats::SimStats;
use dvi_isa::{Abi, FuKind, InstrClass};
use dvi_mem::{CachePorts, MemoryHierarchy};
use dvi_program::DynInst;
use std::collections::VecDeque;

/// Execution state of a legacy in-flight instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntryState {
    Waiting,
    Executing { done_at: u64 },
    Done,
}

/// A window entry exactly as the seed stored it: owned per-dispatch, with a
/// heap-allocated reclaim list.
#[derive(Debug, Clone)]
struct InFlight {
    mem_addr: Option<u64>,
    dst: Option<PhysReg>,
    old_dst: Option<PhysReg>,
    srcs: [Option<PhysReg>; 2],
    class: InstrClass,
    reclaim: Vec<PhysReg>,
    state: EntryState,
    resolves_fetch_stall: bool,
}

impl InFlight {
    fn is_done(&self) -> bool {
        self.state == EntryState::Done
    }
}

/// Safety valve: if the pipeline makes no forward progress for this many
/// cycles, the run is aborted (this indicates a modelling bug, not a
/// property of the workload).
const PROGRESS_LIMIT: u64 = 100_000;

/// The trace-driven out-of-order timing simulator.
///
/// See the crate-level documentation for the modelling assumptions. A
/// `LegacySimulator` is single-use: construct it with a [`SimConfig`], call
/// [`LegacySimulator::run`] with a dynamic instruction stream (usually a
/// [`dvi_program::Interpreter`]) and read the returned [`SimStats`].
#[derive(Debug)]
pub struct LegacySimulator {
    config: SimConfig,
    rename: RenameState,
    dvi: DviModel,
    mem: MemoryHierarchy,
    ports: CachePorts,
    fu: FuPool,
    pred: FetchPredictor,
    window: VecDeque<InFlight>,
    /// The shared in-order front end (fetch queue, redirect state machine,
    /// per-PC decode memo, decode-stage DVI plumbing).
    front: FrontEnd,
    cycle: u64,
    stats: SimStats,
}

impl LegacySimulator {
    /// Builds a simulator for the given machine configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SimConfig::validate`].
    #[must_use]
    pub fn new(config: SimConfig) -> Self {
        config.validate();
        LegacySimulator {
            rename: RenameState::new(config.phys_regs),
            dvi: DviModel::Live(DviEngine::new(config.dvi, Abi::mips_like())),
            mem: MemoryHierarchy::new(
                config.icache,
                config.dcache,
                config.l2,
                config.memory_latency,
            ),
            ports: CachePorts::new(config.cache_ports),
            fu: FuPool::new(config.int_alu_units, config.int_mul_units),
            pred: FetchPredictor::live(config.predictor),
            window: VecDeque::with_capacity(config.window_size),
            front: FrontEnd::new(&config),
            cycle: 0,
            stats: SimStats::default(),
            config,
        }
    }

    /// Runs the machine over a dynamic instruction stream until every
    /// instruction has committed, and returns the accumulated statistics.
    pub fn run<I>(mut self, trace: I) -> SimStats
    where
        I: IntoIterator<Item = DynInst>,
    {
        let mut trace = trace.into_iter();
        let mut last_progress = (0u64, 0u64); // (cycle, committed)
        let mut last_fetch = (0u64, 0u64); // (cycle, fetched)
        loop {
            self.commit();
            self.writeback();
            self.issue();
            self.rename_dispatch();
            self.front.fetch(
                self.cycle,
                &self.config,
                &mut self.mem,
                &mut self.pred,
                &mut self.stats,
                &mut trace,
            );

            self.cycle += 1;
            self.fu.next_cycle();
            self.ports.next_cycle();
            let used = self.rename.total() - self.rename.free_count();
            self.stats.peak_phys_regs_used = self.stats.peak_phys_regs_used.max(used);

            if self.front.is_drained() && self.window.is_empty() {
                break;
            }
            if self.stats.fetched_instrs != last_fetch.1 {
                last_fetch = (self.cycle, self.stats.fetched_instrs);
            }
            if self.stats.committed_entries != last_progress.1 {
                last_progress = (self.cycle, self.stats.committed_entries);
            } else if self.cycle - last_progress.0 > PROGRESS_LIMIT {
                // Demoted from an assert to a structured report, matching
                // the session-driven core (`SimSession::tick`).
                self.stats.deadlocked = true;
                self.stats.deadlock = Some(crate::stats::DeadlockReport {
                    stall_cycle: last_progress.0,
                    detected_cycle: self.cycle,
                    window_occupancy: self.window.len(),
                    // Legacy window entries do not carry record sequence
                    // numbers; the event-driven core's report does.
                    head_seq: None,
                    last_stage: if last_fetch.0 > last_progress.0 {
                        crate::stats::ProgressStage::Fetch
                    } else {
                        crate::stats::ProgressStage::Commit
                    },
                });
                break;
            }
        }
        self.stats.cycles = self.cycle;
        self.stats.dvi = self.dvi.stats();
        self.stats.branch = self.pred.stats();
        self.stats.memory = self.mem.stats();
        self.stats
    }

    // ----------------------------------------------------------- commit --
    fn commit(&mut self) {
        let mut committed = 0;
        while committed < self.config.commit_width {
            let Some(front) = self.window.front() else { break };
            if !front.is_done() {
                break;
            }
            let entry = self.window.pop_front().expect("front exists");
            if let Some(old) = entry.old_dst {
                self.rename.release(old);
            }
            for p in entry.reclaim {
                self.rename.release(p);
            }
            self.stats.committed_entries += 1;
            self.stats.program_instrs += 1;
            committed += 1;
        }
    }

    // -------------------------------------------------------- writeback --
    fn writeback(&mut self) {
        for i in 0..self.window.len() {
            let done_at = match self.window[i].state {
                EntryState::Executing { done_at } => done_at,
                _ => continue,
            };
            if done_at > self.cycle {
                continue;
            }
            self.window[i].state = EntryState::Done;
            if let Some(dst) = self.window[i].dst {
                self.rename.set_ready(dst);
            }
            if self.window[i].resolves_fetch_stall {
                self.front.resolve_fetch_stall(self.cycle, self.config.mispredict_penalty);
            }
        }
    }

    // ------------------------------------------------------------ issue --
    fn issue(&mut self) {
        let mut issued = 0;
        for i in 0..self.window.len() {
            if issued >= self.config.issue_width {
                break;
            }
            if self.window[i].state != EntryState::Waiting {
                continue;
            }
            let ready = self.window[i].srcs.iter().flatten().all(|p| self.rename.is_ready(*p));
            if !ready {
                continue;
            }
            let class = self.window[i].class;
            let Some(kind) = class.fu_kind() else {
                self.window[i].state = EntryState::Done;
                continue;
            };
            if kind == FuKind::MemPort {
                if !self.ports.try_acquire() {
                    continue;
                }
            } else if !self.fu.try_acquire(kind) {
                continue;
            }
            let latency = self.execution_latency(i, class);
            self.window[i].state = EntryState::Executing { done_at: self.cycle + latency.max(1) };
            issued += 1;
        }
    }

    fn execution_latency(&mut self, idx: usize, class: InstrClass) -> u64 {
        // As in the main core's SoA window, an address-less memory
        // operation is a decode/capture bug that must not silently alias
        // to cache line 0 (the seed's `unwrap_or(0)` did exactly that).
        match class {
            InstrClass::Load => {
                let addr = self.window[idx].mem_addr.expect("memory operation without an address");
                self.mem.data_access(addr, false).latency
            }
            InstrClass::Store => {
                let addr = self.window[idx].mem_addr.expect("memory operation without an address");
                // Stores retire into the cache; the pipeline only waits for
                // address/data readiness, so the latency charged here is the
                // port occupancy, while the access updates the cache state.
                let _ = self.mem.data_access(addr, true);
                1
            }
            other => u64::from(other.base_latency()),
        }
    }

    // --------------------------------------------------- rename/dispatch --
    fn rename_dispatch(&mut self) {
        let mut dispatched = 0;
        while dispatched < self.config.decode_width {
            let window_full = self.window.len() >= self.config.window_size;
            let outcome = self.front.next_dispatch(
                window_full,
                &mut self.dvi,
                &mut self.rename,
                &mut self.stats,
            );
            match outcome {
                Dispatch::Empty | Dispatch::StallWindow | Dispatch::StallRename => break,
                Dispatch::Consumed { .. } => dispatched += 1,
                Dispatch::Enter(e) => {
                    // Exactly the seed's entry construction: a fresh owned
                    // entry with a heap-allocated reclaim list per dispatch.
                    let mut entry = InFlight {
                        mem_addr: e.mem_addr,
                        dst: e.dst,
                        old_dst: e.old_dst,
                        srcs: e.srcs,
                        class: e.class,
                        reclaim: Vec::new(),
                        state: EntryState::Waiting,
                        resolves_fetch_stall: e.resolves_fetch_stall,
                    };
                    self.front.drain_reclaim_into_vec(&mut entry.reclaim);
                    if e.fu_kind.is_none() {
                        entry.state = EntryState::Done;
                    }
                    self.window.push_back(entry);
                    dispatched += 1;
                }
            }
        }
    }
}
