//! The seed's original pipeline implementation, preserved verbatim as the
//! throughput baseline.
//!
//! This is the simulator core exactly as it stood before the event-driven
//! rewrite: a `VecDeque` instruction window whose entries are constructed
//! (and whose `Vec` reclaim lists are allocated) per dispatch, decode-stage
//! DVI reclaims returned as fresh `Vec`s, and writeback/issue implemented
//! as full-window scans every cycle. It models the *same machine*
//! cycle-for-cycle — `tests/scheduler_equiv.rs` asserts its `SimStats` are
//! bit-identical to both current schedulers — so the `sim_throughput`
//! bench can report an apples-to-apples host-speed comparison against the
//! seed core (pair it with `Interpreter::with_sparse_memory` for the
//! original interpreter memory as well).
//!
//! Do not extend this module; it intentionally tracks the seed, not the
//! current design.

use crate::config::SimConfig;
use crate::dvi_engine::{DviEngine, ReclaimList};
use crate::fu::FuPool;
use crate::rename::{PhysReg, RenameState};
use crate::stats::SimStats;
use dvi_bpred::CombiningPredictor;
use dvi_isa::{Abi, FuKind, Instr, InstrClass};
use dvi_mem::{CachePorts, MemoryHierarchy};
use dvi_program::DynInst;
use std::collections::VecDeque;

/// Execution state of a legacy in-flight instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntryState {
    Waiting,
    Executing { done_at: u64 },
    Done,
}

/// A window entry exactly as the seed stored it: owned per-dispatch, with a
/// heap-allocated reclaim list.
#[derive(Debug, Clone)]
struct InFlight {
    dyn_inst: DynInst,
    dst: Option<PhysReg>,
    old_dst: Option<PhysReg>,
    srcs: [Option<PhysReg>; 2],
    reclaim: Vec<PhysReg>,
    state: EntryState,
    resolves_fetch_stall: bool,
}

impl InFlight {
    fn new(
        dyn_inst: DynInst,
        dst: Option<PhysReg>,
        old_dst: Option<PhysReg>,
        srcs: [Option<PhysReg>; 2],
    ) -> Self {
        InFlight {
            dyn_inst,
            dst,
            old_dst,
            srcs,
            reclaim: Vec::new(),
            state: EntryState::Waiting,
            resolves_fetch_stall: false,
        }
    }

    fn is_done(&self) -> bool {
        self.state == EntryState::Done
    }
}

/// Replicates the seed's `DviEngine::on_kill` return convention (a fresh
/// `Vec` per event) on top of the current out-parameter API.
fn on_kill_vec(
    dvi: &mut DviEngine,
    mask: dvi_isa::RegMask,
    rename: &mut RenameState,
) -> Vec<PhysReg> {
    let mut out = ReclaimList::new();
    dvi.on_kill(mask, rename, &mut out);
    out.iter().collect()
}

/// Replicates the seed's `DviEngine::on_call` return convention.
fn on_call_vec(dvi: &mut DviEngine, rename: &mut RenameState) -> Vec<PhysReg> {
    let mut out = ReclaimList::new();
    dvi.on_call(rename, &mut out);
    out.iter().collect()
}

/// Replicates the seed's `DviEngine::on_return` return convention.
fn on_return_vec(dvi: &mut DviEngine, rename: &mut RenameState) -> Vec<PhysReg> {
    let mut out = ReclaimList::new();
    dvi.on_return(rename, &mut out);
    out.iter().collect()
}

/// Safety valve: if the pipeline makes no forward progress for this many
/// cycles, the run is aborted (this indicates a modelling bug, not a
/// property of the workload).
const PROGRESS_LIMIT: u64 = 100_000;

/// The trace-driven out-of-order timing simulator.
///
/// See the crate-level documentation for the modelling assumptions. A
/// `LegacySimulator` is single-use: construct it with a [`SimConfig`], call
/// [`LegacySimulator::run`] with a dynamic instruction stream (usually a
/// [`dvi_program::Interpreter`]) and read the returned [`SimStats`].
#[derive(Debug)]
pub struct LegacySimulator {
    config: SimConfig,
    rename: RenameState,
    dvi: DviEngine,
    mem: MemoryHierarchy,
    ports: CachePorts,
    fu: FuPool,
    bpred: CombiningPredictor,
    window: VecDeque<InFlight>,
    fetch_queue: VecDeque<DynInst>,
    cycle: u64,
    stats: SimStats,
    /// Cycle at which fetch may resume after an I-cache miss or a resolved
    /// misprediction.
    fetch_stall_until: u64,
    /// Sequence number of the mispredicted branch fetch is waiting on.
    pending_mispredict: Option<u64>,
    /// Physical registers reclaimed by DVI at decode, waiting to be attached
    /// to the next dispatched window entry so they are freed at its commit.
    pending_reclaim: Vec<PhysReg>,
    /// Cache line of the most recent instruction fetch (the fetch stage
    /// accesses the I-cache once per line, not once per instruction).
    last_fetch_line: Option<u64>,
    trace_done: bool,
}

impl LegacySimulator {
    /// Builds a simulator for the given machine configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SimConfig::validate`].
    #[must_use]
    pub fn new(config: SimConfig) -> Self {
        config.validate();
        LegacySimulator {
            rename: RenameState::new(config.phys_regs),
            dvi: DviEngine::new(config.dvi, Abi::mips_like()),
            mem: MemoryHierarchy::new(
                config.icache,
                config.dcache,
                config.l2,
                config.memory_latency,
            ),
            ports: CachePorts::new(config.cache_ports),
            fu: FuPool::new(config.int_alu_units, config.int_mul_units),
            bpred: CombiningPredictor::new(config.predictor),
            window: VecDeque::with_capacity(config.window_size),
            fetch_queue: VecDeque::with_capacity(config.fetch_queue),
            cycle: 0,
            stats: SimStats::default(),
            fetch_stall_until: 0,
            pending_mispredict: None,
            pending_reclaim: Vec::new(),
            last_fetch_line: None,
            trace_done: false,
            config,
        }
    }

    /// Runs the machine over a dynamic instruction stream until every
    /// instruction has committed, and returns the accumulated statistics.
    pub fn run<I>(mut self, trace: I) -> SimStats
    where
        I: IntoIterator<Item = DynInst>,
    {
        let mut trace = trace.into_iter();
        let mut last_progress = (0u64, 0u64); // (cycle, committed)
        loop {
            self.commit();
            self.writeback();
            self.issue();
            self.rename_dispatch();
            self.fetch(&mut trace);

            self.cycle += 1;
            self.fu.next_cycle();
            self.ports.next_cycle();
            let used = self.rename.total() - self.rename.free_count();
            self.stats.peak_phys_regs_used = self.stats.peak_phys_regs_used.max(used);

            if self.trace_done && self.fetch_queue.is_empty() && self.window.is_empty() {
                break;
            }
            if self.stats.committed_entries != last_progress.1 {
                last_progress = (self.cycle, self.stats.committed_entries);
            } else if self.cycle - last_progress.0 > PROGRESS_LIMIT {
                debug_assert!(false, "pipeline deadlock: no commit in {PROGRESS_LIMIT} cycles");
                break;
            }
        }
        self.stats.cycles = self.cycle;
        self.stats.dvi = self.dvi.stats();
        self.stats.branch = self.bpred.stats();
        self.stats.memory = self.mem.stats();
        self.stats
    }

    // ----------------------------------------------------------- commit --
    fn commit(&mut self) {
        let mut committed = 0;
        while committed < self.config.commit_width {
            let Some(front) = self.window.front() else { break };
            if !front.is_done() {
                break;
            }
            let entry = self.window.pop_front().expect("front exists");
            if let Some(old) = entry.old_dst {
                self.rename.release(old);
            }
            for p in entry.reclaim {
                self.rename.release(p);
            }
            self.stats.committed_entries += 1;
            self.stats.program_instrs += 1;
            committed += 1;
        }
    }

    // -------------------------------------------------------- writeback --
    fn writeback(&mut self) {
        for i in 0..self.window.len() {
            let done_at = match self.window[i].state {
                EntryState::Executing { done_at } => done_at,
                _ => continue,
            };
            if done_at > self.cycle {
                continue;
            }
            self.window[i].state = EntryState::Done;
            if let Some(dst) = self.window[i].dst {
                self.rename.set_ready(dst);
            }
            if self.window[i].resolves_fetch_stall {
                self.pending_mispredict = None;
                self.fetch_stall_until =
                    self.fetch_stall_until.max(self.cycle + 1 + self.config.mispredict_penalty);
            }
        }
    }

    // ------------------------------------------------------------ issue --
    fn issue(&mut self) {
        let mut issued = 0;
        for i in 0..self.window.len() {
            if issued >= self.config.issue_width {
                break;
            }
            if self.window[i].state != EntryState::Waiting {
                continue;
            }
            let ready = self.window[i].srcs.iter().flatten().all(|p| self.rename.is_ready(*p));
            if !ready {
                continue;
            }
            let class = self.window[i].dyn_inst.instr.class();
            let Some(kind) = class.fu_kind() else {
                self.window[i].state = EntryState::Done;
                continue;
            };
            if kind == FuKind::MemPort {
                if !self.ports.try_acquire() {
                    continue;
                }
            } else if !self.fu.try_acquire(kind) {
                continue;
            }
            let latency = self.execution_latency(i, class);
            self.window[i].state = EntryState::Executing { done_at: self.cycle + latency.max(1) };
            issued += 1;
        }
    }

    fn execution_latency(&mut self, idx: usize, class: InstrClass) -> u64 {
        match class {
            InstrClass::Load => {
                let addr = self.window[idx].dyn_inst.mem_addr.unwrap_or(0);
                self.mem.data_access(addr, false).latency
            }
            InstrClass::Store => {
                let addr = self.window[idx].dyn_inst.mem_addr.unwrap_or(0);
                // Stores retire into the cache; the pipeline only waits for
                // address/data readiness, so the latency charged here is the
                // port occupancy, while the access updates the cache state.
                let _ = self.mem.data_access(addr, true);
                1
            }
            other => u64::from(other.base_latency()),
        }
    }

    // --------------------------------------------------- rename/dispatch --
    fn rename_dispatch(&mut self) {
        let mut dispatched = 0;
        while dispatched < self.config.decode_width {
            let Some(front) = self.fetch_queue.front() else { break };
            let dyn_inst = *front;
            let instr = dyn_inst.instr;

            // E-DVI annotations are consumed at decode: they never occupy a
            // window slot, a rename slot or a functional unit. Physical
            // registers they unmap are freed when the next dispatched
            // instruction (in practice, the annotated call) commits.
            if let Instr::Kill { mask } = instr {
                let reclaimed = on_kill_vec(&mut self.dvi, mask, &mut self.rename);
                self.pending_reclaim.extend(reclaimed);
                self.fetch_queue.pop_front();
                dispatched += 1;
                continue;
            }

            if instr.is_mem() {
                self.stats.mem_refs += 1;
            }

            // Save/restore elimination happens here: the instruction was
            // fetched and decoded but is not dispatched.
            if instr.is_save() {
                let data_reg = instr.src_regs()[0].expect("live-store has a data register");
                if self.dvi.on_save(data_reg) {
                    self.fetch_queue.pop_front();
                    self.stats.program_instrs += 1;
                    dispatched += 1;
                    continue;
                }
            } else if instr.is_restore() {
                let dst = instr.dst_reg().expect("live-load has a destination");
                if self.dvi.on_restore(dst) {
                    self.fetch_queue.pop_front();
                    self.stats.program_instrs += 1;
                    dispatched += 1;
                    continue;
                }
            }

            // Everything else needs a window slot.
            if self.window.len() >= self.config.window_size {
                self.stats.rename_stalls_no_window += 1;
                break;
            }

            // Rename sources before the destination (an instruction may read
            // the register it overwrites).
            let src_regs = instr.src_regs();
            let srcs = [
                src_regs[0].and_then(|r| self.rename.lookup(r)),
                src_regs[1].and_then(|r| self.rename.lookup(r)),
            ];

            let mut dst = None;
            let mut old_dst = None;
            if let Some(d) = instr.dst_reg() {
                match self.rename.rename_dst(d) {
                    Some((new, old)) => {
                        dst = Some(new);
                        old_dst = old;
                        self.dvi.on_dest_rename(d);
                    }
                    None => {
                        self.stats.rename_stalls_no_reg += 1;
                        break;
                    }
                }
            }

            // Implicit DVI and the LVM-Stack. Reclaimed mappings are freed
            // when this call/return commits.
            if instr.is_call() {
                let reclaimed = on_call_vec(&mut self.dvi, &mut self.rename);
                self.pending_reclaim.extend(reclaimed);
            } else if instr.is_return() {
                let reclaimed = on_return_vec(&mut self.dvi, &mut self.rename);
                self.pending_reclaim.extend(reclaimed);
            }

            let mut entry = InFlight::new(dyn_inst, dst, old_dst, srcs);
            entry.reclaim = std::mem::take(&mut self.pending_reclaim);
            if self.pending_mispredict == Some(dyn_inst.seq) {
                entry.resolves_fetch_stall = true;
            }
            if instr.class().fu_kind().is_none() {
                entry.state = EntryState::Done;
            }
            self.window.push_back(entry);
            self.fetch_queue.pop_front();
            dispatched += 1;
        }
    }

    // ------------------------------------------------------------ fetch --
    fn fetch<I>(&mut self, trace: &mut I)
    where
        I: Iterator<Item = DynInst>,
    {
        if self.trace_done
            || self.pending_mispredict.is_some()
            || self.cycle < self.fetch_stall_until
        {
            return;
        }
        for _ in 0..self.config.fetch_width {
            if self.fetch_queue.len() >= self.config.fetch_queue {
                break;
            }
            let Some(dyn_inst) = trace.next() else {
                self.trace_done = true;
                break;
            };
            self.stats.fetched_instrs += 1;
            if dyn_inst.instr.is_dvi() {
                self.stats.fetched_kills += 1;
            }

            // Instruction-cache access: once per cache line, with a
            // next-line prefetch so sequential code does not pay the full
            // miss latency on every line (fetch units of this era overlap
            // line fills with draining the fetch queue).
            let line_bytes = self.config.icache.line_bytes;
            let line = dyn_inst.byte_addr() / line_bytes;
            let mut icache_miss = false;
            if self.last_fetch_line != Some(line) {
                self.last_fetch_line = Some(line);
                let access = self.mem.inst_fetch(dyn_inst.byte_addr());
                let _ = self.mem.inst_fetch((line + 1) * line_bytes);
                if !access.l1_hit {
                    self.fetch_stall_until = self.cycle + access.latency;
                    icache_miss = true;
                }
            }

            let mut redirected = false;
            match dyn_inst.instr {
                Instr::Branch { .. } => {
                    let taken = dyn_inst.taken.unwrap_or(false);
                    let predicted = self.bpred.predict(dyn_inst.byte_addr());
                    self.bpred.update(dyn_inst.byte_addr(), taken);
                    if predicted != taken {
                        self.pending_mispredict = Some(dyn_inst.seq);
                        redirected = true;
                    }
                }
                Instr::Call { .. } => {
                    self.bpred.push_return_address(dyn_inst.fallthrough_byte_addr());
                }
                Instr::Return => {
                    let actual = dvi_program::LayoutProgram::byte_addr(dyn_inst.next_pc);
                    if !self.bpred.predict_return(actual) {
                        self.pending_mispredict = Some(dyn_inst.seq);
                        redirected = true;
                    }
                }
                _ => {}
            }

            self.fetch_queue.push_back(dyn_inst);
            if redirected || icache_miss {
                break;
            }
        }
    }
}
