//! Branch target buffer.

/// Geometry of the branch target buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BtbConfig {
    /// Number of entries (power of two).
    pub entries: usize,
}

impl BtbConfig {
    /// A 4K-entry BTB, in line with the large predictor of Figure 2.
    #[must_use]
    pub fn micro97() -> Self {
        BtbConfig { entries: 4096 }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct BtbEntry {
    valid: bool,
    tag: u64,
    target: u64,
}

/// A direct-mapped branch target buffer: maps a branch PC to its most recent
/// target so fetch can redirect without decoding the branch.
#[derive(Debug, Clone)]
pub struct Btb {
    entries: Vec<BtbEntry>,
    index_mask: u64,
}

impl Btb {
    /// Creates an empty BTB.
    ///
    /// # Panics
    ///
    /// Panics if the entry count is not a power of two.
    #[must_use]
    pub fn new(config: BtbConfig) -> Self {
        assert!(config.entries.is_power_of_two(), "BTB size must be a power of two");
        Btb {
            entries: vec![BtbEntry::default(); config.entries],
            index_mask: config.entries as u64 - 1,
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) & self.index_mask) as usize
    }

    /// Looks up the predicted target for the branch at `pc`.
    #[must_use]
    pub fn lookup(&self, pc: u64) -> Option<u64> {
        let e = &self.entries[self.index(pc)];
        (e.valid && e.tag == pc).then_some(e.target)
    }

    /// Records the actual target of the branch at `pc`.
    pub fn update(&mut self, pc: u64, target: u64) {
        let idx = self.index(pc);
        self.entries[idx] = BtbEntry { valid: true, tag: pc, target };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut btb = Btb::new(BtbConfig { entries: 64 });
        assert_eq!(btb.lookup(0x100), None);
        btb.update(0x100, 0x400);
        assert_eq!(btb.lookup(0x100), Some(0x400));
    }

    #[test]
    fn aliasing_entries_are_tag_checked() {
        let mut btb = Btb::new(BtbConfig { entries: 64 });
        btb.update(0x100, 0x400);
        // 0x100 + 64*4 maps to the same index but has a different tag.
        assert_eq!(btb.lookup(0x100 + 64 * 4), None);
    }

    #[test]
    fn update_overwrites_target() {
        let mut btb = Btb::new(BtbConfig::micro97());
        btb.update(0x80, 0x1000);
        btb.update(0x80, 0x2000);
        assert_eq!(btb.lookup(0x80), Some(0x2000));
    }
}
