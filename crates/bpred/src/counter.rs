//! Saturating two-bit prediction counter.

/// A two-bit saturating counter, the building block of the bimodal and
/// gshare tables.
///
/// States 0 and 1 predict not-taken, states 2 and 3 predict taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TwoBitCounter(u8);

impl TwoBitCounter {
    /// Creates a counter in the weakly-taken state (the usual reset value).
    #[must_use]
    pub fn new() -> Self {
        TwoBitCounter(2)
    }

    /// Creates a counter with a specific state (clamped to 0..=3).
    #[must_use]
    pub fn with_state(state: u8) -> Self {
        TwoBitCounter(state.min(3))
    }

    /// The raw state, 0..=3.
    #[must_use]
    pub fn state(self) -> u8 {
        self.0
    }

    /// The prediction: `true` means taken.
    #[must_use]
    pub fn predict(self) -> bool {
        self.0 >= 2
    }

    /// Trains the counter with the actual outcome.
    pub fn update(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }
}

impl Default for TwoBitCounter {
    fn default() -> Self {
        TwoBitCounter::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn saturates_at_both_ends() {
        let mut c = TwoBitCounter::new();
        for _ in 0..10 {
            c.update(true);
        }
        assert_eq!(c.state(), 3);
        for _ in 0..10 {
            c.update(false);
        }
        assert_eq!(c.state(), 0);
    }

    #[test]
    fn hysteresis_requires_two_flips() {
        let mut c = TwoBitCounter::with_state(3);
        c.update(false);
        assert!(c.predict(), "one not-taken outcome does not flip a strong counter");
        c.update(false);
        assert!(!c.predict());
    }

    #[test]
    fn with_state_clamps() {
        assert_eq!(TwoBitCounter::with_state(9).state(), 3);
    }

    proptest! {
        #[test]
        fn state_always_in_range(updates in proptest::collection::vec(any::<bool>(), 0..64)) {
            let mut c = TwoBitCounter::new();
            for u in updates {
                c.update(u);
                prop_assert!(c.state() <= 3);
            }
        }
    }
}
