//! # dvi-bpred
//!
//! Branch-prediction substrate for the DVI reproduction, modelled on the
//! machine of Figure 2 of *Exploiting Dead Value Information*: a
//! combinational gshare/bimodal predictor with 16 bits of global history, a
//! branch target buffer, and a return-address stack.
//!
//! # Example
//!
//! ```
//! use dvi_bpred::{CombiningPredictor, PredictorConfig};
//!
//! let mut bp = CombiningPredictor::new(PredictorConfig::micro97());
//! // Train on an always-taken branch.
//! for _ in 0..16 {
//!     let _ = bp.predict(0x400);
//!     bp.update(0x400, true);
//! }
//! assert!(bp.predict(0x400));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bimodal;
mod btb;
mod combining;
mod counter;
mod gshare;
mod ras;

pub use bimodal::Bimodal;
pub use btb::{Btb, BtbConfig};
pub use combining::{CombiningPredictor, PredictorConfig, PredictorStats};
pub use counter::TwoBitCounter;
pub use gshare::Gshare;
pub use ras::ReturnAddressStack;
