//! Bimodal (per-PC) branch direction predictor.

use crate::counter::TwoBitCounter;

/// A bimodal predictor: a table of two-bit counters indexed by the branch
/// address.
#[derive(Debug, Clone)]
pub struct Bimodal {
    table: Vec<TwoBitCounter>,
    index_mask: u64,
}

impl Bimodal {
    /// Creates a bimodal predictor with `entries` counters.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    #[must_use]
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two(), "bimodal table size must be a power of two");
        Bimodal { table: vec![TwoBitCounter::new(); entries], index_mask: entries as u64 - 1 }
    }

    fn index(&self, pc: u64) -> usize {
        // Instructions are word-aligned; drop the low two bits.
        ((pc >> 2) & self.index_mask) as usize
    }

    /// Predicts the direction of the branch at `pc`.
    #[must_use]
    pub fn predict(&self, pc: u64) -> bool {
        self.table[self.index(pc)].predict()
    }

    /// Trains the entry for `pc` with the actual outcome.
    pub fn update(&mut self, pc: u64, taken: bool) {
        let idx = self.index(pc);
        self.table[idx].update(taken);
    }

    /// Number of table entries.
    #[must_use]
    pub fn entries(&self) -> usize {
        self.table.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_biased_branch() {
        let mut p = Bimodal::new(1024);
        for _ in 0..4 {
            p.update(0x1000, true);
        }
        assert!(p.predict(0x1000));
        for _ in 0..4 {
            p.update(0x1000, false);
        }
        assert!(!p.predict(0x1000));
    }

    #[test]
    fn different_pcs_use_different_entries() {
        let mut p = Bimodal::new(1024);
        for _ in 0..4 {
            p.update(0x1000, true);
            p.update(0x1004, false);
        }
        assert!(p.predict(0x1000));
        assert!(!p.predict(0x1004));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = Bimodal::new(1000);
    }
}
