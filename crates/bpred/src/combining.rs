//! Combining (tournament) predictor with BTB and return-address stack.

use crate::bimodal::Bimodal;
use crate::btb::{Btb, BtbConfig};
use crate::counter::TwoBitCounter;
use crate::gshare::Gshare;
use crate::ras::ReturnAddressStack;

/// Configuration of the combining predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictorConfig {
    /// Entries in the bimodal table.
    pub bimodal_entries: usize,
    /// Entries in the gshare table.
    pub gshare_entries: usize,
    /// Bits of global history feeding gshare.
    pub history_bits: u32,
    /// Entries in the chooser table.
    pub chooser_entries: usize,
    /// BTB geometry.
    pub btb: BtbConfig,
    /// Return-address stack depth.
    pub ras_entries: usize,
}

impl PredictorConfig {
    /// Figure 2's predictor: 16-bit history, combinational gshare/bimodal,
    /// large tables and BTB.
    #[must_use]
    pub fn micro97() -> Self {
        PredictorConfig {
            bimodal_entries: 8192,
            gshare_entries: 65536,
            history_bits: 16,
            chooser_entries: 8192,
            btb: BtbConfig::micro97(),
            ras_entries: 32,
        }
    }

    /// A deliberately tiny predictor, useful in tests that need
    /// mispredictions.
    #[must_use]
    pub fn tiny() -> Self {
        PredictorConfig {
            bimodal_entries: 16,
            gshare_entries: 16,
            history_bits: 4,
            chooser_entries: 16,
            btb: BtbConfig { entries: 16 },
            ras_entries: 4,
        }
    }
}

/// Counters describing predictor behaviour over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredictorStats {
    /// Conditional-branch direction predictions made.
    pub direction_predictions: u64,
    /// Conditional-branch direction mispredictions.
    pub direction_mispredictions: u64,
    /// Return-address predictions made.
    pub return_predictions: u64,
    /// Return-address mispredictions.
    pub return_mispredictions: u64,
}

impl PredictorStats {
    /// Direction-prediction accuracy in `[0, 1]` (1.0 when no predictions
    /// were made).
    #[must_use]
    pub fn direction_accuracy(&self) -> f64 {
        if self.direction_predictions == 0 {
            1.0
        } else {
            1.0 - self.direction_mispredictions as f64 / self.direction_predictions as f64
        }
    }
}

/// The tournament predictor of Figure 2: bimodal and gshare components with
/// a per-branch chooser, a branch target buffer and a return-address stack.
#[derive(Debug, Clone)]
pub struct CombiningPredictor {
    bimodal: Bimodal,
    gshare: Gshare,
    chooser: Vec<TwoBitCounter>,
    chooser_mask: u64,
    btb: Btb,
    ras: ReturnAddressStack,
    stats: PredictorStats,
}

impl CombiningPredictor {
    /// Creates a predictor from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if any table size is not a power of two or the RAS is empty.
    #[must_use]
    pub fn new(config: PredictorConfig) -> Self {
        assert!(config.chooser_entries.is_power_of_two(), "chooser size must be a power of two");
        CombiningPredictor {
            bimodal: Bimodal::new(config.bimodal_entries),
            gshare: Gshare::new(config.gshare_entries, config.history_bits),
            chooser: vec![TwoBitCounter::new(); config.chooser_entries],
            chooser_mask: config.chooser_entries as u64 - 1,
            btb: Btb::new(config.btb),
            ras: ReturnAddressStack::new(config.ras_entries),
            stats: PredictorStats::default(),
        }
    }

    fn chooser_index(&self, pc: u64) -> usize {
        ((pc >> 2) & self.chooser_mask) as usize
    }

    /// Predicts the direction of the conditional branch at `pc`.
    pub fn predict(&mut self, pc: u64) -> bool {
        self.stats.direction_predictions += 1;
        let use_gshare = self.chooser[self.chooser_index(pc)].predict();
        if use_gshare {
            self.gshare.predict(pc)
        } else {
            self.bimodal.predict(pc)
        }
    }

    /// Trains every component with the branch outcome and records whether
    /// the most recent prediction was wrong.
    pub fn update(&mut self, pc: u64, taken: bool) {
        let g_pred = self.gshare.predict(pc);
        let b_pred = self.bimodal.predict(pc);
        let idx = self.chooser_index(pc);
        let chosen = if self.chooser[idx].predict() { g_pred } else { b_pred };
        if chosen != taken {
            self.stats.direction_mispredictions += 1;
        }
        // The chooser trains toward the component that was right when they
        // disagree.
        if g_pred != b_pred {
            self.chooser[idx].update(g_pred == taken);
        }
        self.bimodal.update(pc, taken);
        self.gshare.update(pc, taken);
    }

    /// Looks up the BTB for the target of the control instruction at `pc`.
    #[must_use]
    pub fn predict_target(&self, pc: u64) -> Option<u64> {
        self.btb.lookup(pc)
    }

    /// Records the actual target of the control instruction at `pc`.
    pub fn update_target(&mut self, pc: u64, target: u64) {
        self.btb.update(pc, target);
    }

    /// Pushes a return address at a call.
    pub fn push_return_address(&mut self, addr: u64) {
        self.ras.push(addr);
    }

    /// Predicts the target of a `return`, recording accuracy against
    /// `actual`.
    pub fn predict_return(&mut self, actual: u64) -> bool {
        self.stats.return_predictions += 1;
        let correct = self.ras.pop() == Some(actual);
        if !correct {
            self.stats.return_mispredictions += 1;
        }
        correct
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> PredictorStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_biased_branches_quickly() {
        let mut bp = CombiningPredictor::new(PredictorConfig::micro97());
        for _ in 0..32 {
            let _ = bp.predict(0x400);
            bp.update(0x400, true);
        }
        assert!(bp.predict(0x400));
        assert!(bp.stats().direction_accuracy() > 0.8);
    }

    #[test]
    fn chooser_prefers_gshare_on_history_patterns() {
        let mut bp = CombiningPredictor::new(PredictorConfig::micro97());
        // An alternating branch that bimodal cannot learn.
        let mut last_100_wrong = 0;
        for i in 0..600u32 {
            let outcome = i % 2 == 0;
            let pred = bp.predict(0x800);
            if i >= 500 && pred != outcome {
                last_100_wrong += 1;
            }
            bp.update(0x800, outcome);
        }
        assert!(last_100_wrong <= 5, "combined predictor should converge on the pattern");
    }

    #[test]
    fn return_address_stack_predicts_matching_returns() {
        let mut bp = CombiningPredictor::new(PredictorConfig::micro97());
        bp.push_return_address(0x1000);
        bp.push_return_address(0x2000);
        assert!(bp.predict_return(0x2000));
        assert!(bp.predict_return(0x1000));
        assert!(!bp.predict_return(0x3000));
        assert_eq!(bp.stats().return_mispredictions, 1);
    }

    #[test]
    fn btb_round_trip() {
        let mut bp = CombiningPredictor::new(PredictorConfig::tiny());
        assert_eq!(bp.predict_target(0x40), None);
        bp.update_target(0x40, 0x999);
        assert_eq!(bp.predict_target(0x40), Some(0x999));
    }

    #[test]
    fn accuracy_with_no_predictions_is_one() {
        let bp = CombiningPredictor::new(PredictorConfig::tiny());
        assert_eq!(bp.stats().direction_accuracy(), 1.0);
    }
}
