//! Gshare global-history branch direction predictor.

use crate::counter::TwoBitCounter;

/// A gshare predictor: a table of two-bit counters indexed by the XOR of the
/// branch address and a global branch-history register.
#[derive(Debug, Clone)]
pub struct Gshare {
    table: Vec<TwoBitCounter>,
    history: u64,
    history_bits: u32,
    index_mask: u64,
}

impl Gshare {
    /// Creates a gshare predictor with `entries` counters and
    /// `history_bits` bits of global history (Figure 2 uses 16).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or `history_bits` exceeds 32.
    #[must_use]
    pub fn new(entries: usize, history_bits: u32) -> Self {
        assert!(entries.is_power_of_two(), "gshare table size must be a power of two");
        assert!(history_bits <= 32, "history register is at most 32 bits");
        Gshare {
            table: vec![TwoBitCounter::new(); entries],
            history: 0,
            history_bits,
            index_mask: entries as u64 - 1,
        }
    }

    fn index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.history) & self.index_mask) as usize
    }

    /// Predicts the direction of the branch at `pc` under the current global
    /// history.
    #[must_use]
    pub fn predict(&self, pc: u64) -> bool {
        self.table[self.index(pc)].predict()
    }

    /// Trains the indexed entry and shifts the outcome into the global
    /// history register.
    pub fn update(&mut self, pc: u64, taken: bool) {
        let idx = self.index(pc);
        self.table[idx].update(taken);
        self.push_history(taken);
    }

    /// Shifts an outcome into the history register without training (used
    /// when another component made the prediction).
    pub fn push_history(&mut self, taken: bool) {
        let mask = if self.history_bits >= 64 { u64::MAX } else { (1u64 << self.history_bits) - 1 };
        self.history = ((self.history << 1) | u64::from(taken)) & mask;
    }

    /// The current global history register value.
    #[must_use]
    pub fn history(&self) -> u64 {
        self.history
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_history_correlated_pattern() {
        // Branch at 0x2000 alternates T,N,T,N... A bimodal predictor stays
        // at ~50%, but gshare can learn it because the history
        // disambiguates the two contexts.
        let mut g = Gshare::new(4096, 8);
        let mut correct = 0;
        let mut total = 0;
        for i in 0..400u32 {
            let outcome = i % 2 == 0;
            let pred = g.predict(0x2000);
            if i >= 100 {
                total += 1;
                if pred == outcome {
                    correct += 1;
                }
            }
            g.update(0x2000, outcome);
        }
        assert!(
            correct as f64 / total as f64 > 0.95,
            "gshare should learn the alternating pattern"
        );
    }

    #[test]
    fn history_register_is_bounded() {
        let mut g = Gshare::new(1024, 4);
        for _ in 0..100 {
            g.push_history(true);
        }
        assert_eq!(g.history(), 0b1111);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_table_size_rejected() {
        let _ = Gshare::new(1000, 8);
    }
}
