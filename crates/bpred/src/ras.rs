//! Return-address stack.

/// A bounded return-address stack used to predict the targets of `return`
/// instructions. Overflow wraps around (the oldest entry is lost);
/// underflow returns `None`.
#[derive(Debug, Clone)]
pub struct ReturnAddressStack {
    entries: Vec<u64>,
    capacity: usize,
}

impl ReturnAddressStack {
    /// Creates a return-address stack with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "return-address stack needs at least one entry");
        ReturnAddressStack { entries: Vec::with_capacity(capacity), capacity }
    }

    /// Pushes a return address (at a call).
    pub fn push(&mut self, addr: u64) {
        if self.entries.len() == self.capacity {
            self.entries.remove(0);
        }
        self.entries.push(addr);
    }

    /// Pops the predicted return address (at a return).
    pub fn pop(&mut self) -> Option<u64> {
        self.entries.pop()
    }

    /// Current depth.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the stack is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_prediction() {
        let mut ras = ReturnAddressStack::new(8);
        ras.push(0x100);
        ras.push(0x200);
        assert_eq!(ras.pop(), Some(0x200));
        assert_eq!(ras.pop(), Some(0x100));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn overflow_drops_oldest() {
        let mut ras = ReturnAddressStack::new(2);
        ras.push(1);
        ras.push(2);
        ras.push(3);
        assert_eq!(ras.len(), 2);
        assert_eq!(ras.pop(), Some(3));
        assert_eq!(ras.pop(), Some(2));
        assert!(ras.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_capacity_rejected() {
        let _ = ReturnAddressStack::new(0);
    }
}
