//! Integration tests for the preset benchmark suite: every preset must
//! generate, compile, execute and exhibit the instruction-mix properties
//! the experiments rely on.

use dvi_isa::Abi;
use dvi_workloads::{characterize, generate, presets};

#[test]
fn every_preset_generates_and_compiles() {
    let abi = Abi::mips_like();
    for spec in presets::all() {
        let bare = generate(&spec);
        assert!(bare.validate().is_ok(), "{} fails validation", spec.name);
        let compiled = dvi_compiler::compile(&bare, &abi, dvi_compiler::CompileOptions::default())
            .unwrap_or_else(|e| panic!("{} fails to compile: {e}", spec.name));
        assert!(compiled.report.saves_inserted > 0, "{} has no callee saves", spec.name);
        assert!(compiled.report.kill_instructions > 0, "{} got no E-DVI", spec.name);
        assert!(compiled.program.layout().is_ok());
    }
}

#[test]
fn preset_characterizations_are_in_a_spec95_like_regime() {
    for spec in presets::all() {
        let profile = characterize(&generate(&spec), 40_000);
        assert!(
            profile.dyn_instrs > 10_000,
            "{} ran only {} instructions",
            spec.name,
            profile.dyn_instrs
        );
        assert!(
            profile.call_pct() > 0.1 && profile.call_pct() < 8.0,
            "{}: call% {:.2} outside the plausible range",
            spec.name,
            profile.call_pct()
        );
        assert!(
            profile.mem_pct() > 10.0 && profile.mem_pct() < 60.0,
            "{}: mem% {:.1} outside the plausible range",
            spec.name,
            profile.mem_pct()
        );
        assert!(
            profile.save_restore_pct() > 0.5 && profile.save_restore_pct() < 30.0,
            "{}: saves+restores% {:.1} outside the plausible range",
            spec.name,
            profile.save_restore_pct()
        );
    }
}

#[test]
fn call_intensity_ordering_survives_generation() {
    let pct = |spec: &dvi_workloads::WorkloadSpec| characterize(&generate(spec), 40_000).call_pct();
    let perl = pct(&presets::perl_like());
    let li = pct(&presets::li_like());
    let compress = pct(&presets::compress_like());
    let go = pct(&presets::go_like());
    assert!(perl > compress, "perl ({perl:.2}%) should out-call compress ({compress:.2}%)");
    assert!(li > compress, "li ({li:.2}%) should out-call compress ({compress:.2}%)");
    assert!(perl > go, "perl ({perl:.2}%) should out-call go ({go:.2}%)");
}

#[test]
fn generation_is_reproducible_across_invocations() {
    for spec in [presets::perl_like(), presets::gcc_like()] {
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a, b, "{} is not deterministic", spec.name);
    }
}
