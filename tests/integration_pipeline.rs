//! Integration tests spanning the workload generator, compiler, functional
//! interpreter and timing simulator.

use dvi_core::DviConfig;
use dvi_isa::Abi;
use dvi_program::Interpreter;
use dvi_sim::{SimConfig, Simulator};
use dvi_workloads::WorkloadSpec;

fn binaries(seed: u64) -> (dvi_program::LayoutProgram, dvi_program::LayoutProgram) {
    let spec = WorkloadSpec::small("integration", seed);
    let bare = dvi_workloads::generate(&spec);
    let abi = Abi::mips_like();
    let baseline = dvi_compiler::compile(
        &bare,
        &abi,
        dvi_compiler::CompileOptions { edvi: dvi_core::EdviPlacement::None },
    )
    .expect("baseline compiles");
    let edvi = dvi_compiler::compile(&bare, &abi, dvi_compiler::CompileOptions::default())
        .expect("edvi compiles");
    (
        baseline.program.layout().expect("baseline lays out"),
        edvi.program.layout().expect("edvi lays out"),
    )
}

#[test]
fn edvi_annotations_do_not_change_program_semantics() {
    let (baseline, edvi) = binaries(7);
    let run = |layout: &dvi_program::LayoutProgram| {
        let mut interp = Interpreter::new(layout).with_step_limit(2_000_000);
        let _ = interp.by_ref().count();
        assert!(interp.halted(), "program must run to completion");
        // The architectural result visible in the return-value and persistent
        // registers must be unaffected by the annotations.
        (
            interp.state().reg(dvi_isa::ArchReg::RV),
            interp.state().reg(dvi_isa::ArchReg::new(15)),
            interp.state().memory_footprint(),
        )
    };
    assert_eq!(run(&baseline), run(&edvi));
}

#[test]
fn dvi_machine_commits_the_same_work_in_no_more_cycles() {
    let (_, edvi) = binaries(11);
    let budget = 60_000u64;
    let run = |dvi: DviConfig| {
        Simulator::new(SimConfig::micro97().with_dvi(dvi))
            .run(Interpreter::new(&edvi).with_step_limit(budget))
    };
    let baseline = run(DviConfig::none());
    let full = run(DviConfig::full());
    assert!(
        !baseline.deadlocked && !full.deadlocked,
        "the forward-progress watchdog must not fire on healthy workloads"
    );
    assert_eq!(baseline.program_instrs, full.program_instrs, "same program work either way");
    assert!(full.dvi.save_restores_eliminated() > 0);
    assert!(
        full.cycles <= baseline.cycles + baseline.cycles / 50,
        "DVI should not cost cycles: {} vs {}",
        full.cycles,
        baseline.cycles
    );
}

#[test]
fn elimination_rate_tracks_the_dead_at_call_knob() {
    let abi = Abi::mips_like();
    let run_for = |dead_prob: f64| {
        let mut spec = WorkloadSpec::small("knob", 19);
        spec.dead_at_call_probability = dead_prob;
        let bare = dvi_workloads::generate(&spec);
        let compiled =
            dvi_compiler::compile(&bare, &abi, dvi_compiler::CompileOptions::default()).unwrap();
        let layout = compiled.program.layout().unwrap();
        let stats = Simulator::new(SimConfig::micro97().with_dvi(DviConfig::full()))
            .run(Interpreter::new(&layout).with_step_limit(80_000));
        stats.pct_save_restores_eliminated()
    };
    let mostly_live = run_for(0.1);
    let mostly_dead = run_for(0.9);
    assert!(
        mostly_dead > mostly_live,
        "more deadness at call sites must eliminate more saves/restores ({mostly_dead:.1}% vs {mostly_live:.1}%)"
    );
}

#[test]
fn register_reclamation_lets_a_smaller_file_keep_up() {
    let (_, edvi) = binaries(23);
    let budget = 50_000u64;
    let run = |regs: usize, dvi: DviConfig| {
        Simulator::new(SimConfig::micro97().with_phys_regs(regs).with_dvi(dvi))
            .run(Interpreter::new(&edvi).with_step_limit(budget))
    };
    // At a generous file size DVI should make little difference...
    let big_base = run(96, DviConfig::none());
    let big_dvi = run(96, DviConfig::full());
    assert!((big_dvi.ipc() - big_base.ipc()).abs() / big_base.ipc() < 0.25);
    // ...while at a tight file size DVI must not be slower, must relieve
    // renaming pressure (fewer free-list stalls), and must recover a good
    // part of the gap to the generously sized file.
    let small_base = run(38, DviConfig::none());
    let small_dvi = run(38, DviConfig::full());
    assert!(!small_base.deadlocked && !small_dvi.deadlocked, "partial stats would be meaningless");
    assert!(small_dvi.ipc() >= small_base.ipc() * 0.98);
    assert!(
        small_dvi.rename_stalls_no_reg <= small_base.rename_stalls_no_reg,
        "DVI should not increase free-list stalls: {} vs {}",
        small_dvi.rename_stalls_no_reg,
        small_base.rename_stalls_no_reg
    );
    assert!(small_dvi.dvi.phys_regs_reclaimed_early > 0);
    assert!(small_dvi.ipc() >= big_base.ipc() * 0.5);
}
