//! Integration tests over the experiment drivers: each figure must
//! reproduce the paper's qualitative shape on a reduced budget.

use dvi_experiments::{fig02, fig03, fig05, fig06, fig09, fig10, fig12, fig13, Budget};
use dvi_workloads::presets;

fn quick() -> Budget {
    Budget { instrs_per_run: 25_000 }
}

#[test]
fn figure2_lists_the_machine() {
    assert!(fig02::run().to_string().contains("Issue Width"));
}

#[test]
fn figure3_shape_call_heavy_benchmarks_save_more() {
    let fig = fig03::run(quick());
    let row = |name: &str| fig.rows.iter().find(|r| r.name == name).expect("preset present");
    assert!(row("perl").profile.save_restore_pct() > row("compress").profile.save_restore_pct());
    assert!(row("li").profile.call_pct() > row("ijpeg").profile.call_pct());
}

#[test]
fn figures5_and_6_shape_dvi_moves_the_peak_to_a_smaller_file() {
    // Two call-heavy benchmarks and a coarse grid keep this test quick while
    // still exposing the knee shift.
    let benches = vec![presets::perl_like(), presets::li_like()];
    let sizes = vec![34, 38, 44, 52, 64, 80];
    let fig5 = fig05::run_with(quick(), &benches, &sizes);
    let knee_base = fig5.knee(0, 0.92).expect("baseline knee");
    let knee_dvi = fig5.knee(2, 0.92).expect("dvi knee");
    assert!(
        knee_dvi <= knee_base,
        "DVI knee {knee_dvi} should not exceed baseline knee {knee_base}"
    );

    let fig6 = fig06::from_fig05(&fig5);
    assert!(fig6.peak_dvi.0 <= fig6.peak_no_dvi.0, "the optimal file size must not grow with DVI");
    assert!(fig6.peak_dvi.1 >= fig6.peak_no_dvi.1 * 0.99, "peak performance must not regress");
}

#[test]
fn figure9_shape_lvm_stack_roughly_doubles_lvm_and_perl_leads() {
    let benches = vec![presets::perl_like(), presets::go_like()];
    let fig = fig09::run_with(quick(), &benches);
    let perl = fig.rows.iter().find(|r| r.name == "perl").unwrap();
    let go = fig.rows.iter().find(|r| r.name == "go").unwrap();
    // perl (heavy deadness) eliminates a larger fraction than go.
    assert!(
        perl.lvm_stack.0 > go.lvm_stack.0,
        "perl {:.1}% vs go {:.1}%",
        perl.lvm_stack.0,
        go.lvm_stack.0
    );
    // The LVM-Stack scheme eliminates more than the save-only LVM scheme,
    // in the vicinity of 2x (paper: "the LVM scheme provides half the benefit").
    assert!(perl.lvm_stack.0 > perl.lvm.0 * 1.3);
    // perl should eliminate a large fraction of its saves/restores.
    assert!(perl.lvm_stack.0 > 40.0, "perl eliminates {:.1}%", perl.lvm_stack.0);
}

#[test]
fn figure10_shape_call_heavy_benchmarks_speed_up_most() {
    let benches = vec![presets::perl_like(), presets::go_like()];
    let fig = fig10::run_with(quick(), &benches);
    let perl = fig.rows.iter().find(|r| r.name == "perl").unwrap();
    let go = fig.rows.iter().find(|r| r.name == "go").unwrap();
    assert!(perl.lvm_stack_speedup_pct >= go.lvm_stack_speedup_pct - 1.0);
    assert!(fig.best_speedup_pct() > 0.0, "someone must speed up");
    assert!(fig.best_speedup_pct() < 25.0, "speedups should stay in a few-percent regime");
}

#[test]
fn figure12_shape_edvi_adds_to_idvi_reductions() {
    let benches = vec![presets::perl_like()];
    let fig = fig12::run_with(quick(), &benches);
    let row = &fig.rows[0];
    assert!(row.idvi_reduction_pct > 10.0);
    assert!(row.edvi_reduction_pct >= row.idvi_reduction_pct - 1.0);
    assert!(row.edvi_reduction_pct < 95.0);
}

#[test]
fn figure13_shape_edvi_overhead_is_negligible() {
    let benches = vec![presets::li_like()];
    let fig = fig13::run_with(quick(), &benches);
    let row = &fig.rows[0];
    assert!(row.dynamic_fetch_overhead_pct < 8.0);
    assert!(row.static_code_overhead_pct < 12.0);
    assert!(row.ipc_overhead_64k_pct.abs() < 8.0);
}
