//! # dvi-repro
//!
//! Umbrella crate for the reproduction of *Exploiting Dead Value
//! Information* (Martin, Roth, Fischer — MICRO 1997). The implementation
//! lives in the `crates/` workspace members; this crate exists to own the
//! repository-level integration tests (`tests/`) and examples (`examples/`)
//! and re-exports every member for convenience.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dvi_bpred as bpred;
pub use dvi_compiler as compiler;
pub use dvi_core as core;
pub use dvi_experiments as experiments;
pub use dvi_isa as isa;
pub use dvi_mem as mem;
pub use dvi_program as program;
pub use dvi_sim as sim;
pub use dvi_threads as threads;
pub use dvi_timing as timing;
pub use dvi_workloads as workloads;
