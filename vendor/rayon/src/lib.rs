//! Offline stand-in for the `rayon` crate.
//!
//! Implements the small slice of the rayon API the experiment sweeps use —
//! `par_iter()` / `into_par_iter()` followed by `.map(f).collect::<Vec<_>>()`
//! — on top of `std::thread::scope`. Work is divided into contiguous chunks,
//! one per worker thread, and results are returned in input order.
//!
//! Unlike real rayon there is no work stealing: chunks are static, so a
//! single slow item can leave threads idle. For the repository's sweeps
//! (dozens of similar-cost simulations) static chunking is within a few
//! percent of a real work-stealing pool.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::num::NonZeroUsize;

/// The glob-importable prelude, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

/// Number of worker threads used for parallel collection.
fn workers(items: usize) -> usize {
    let cores = std::thread::available_parallelism().map_or(1, NonZeroUsize::get);
    cores.min(items).max(1)
}

/// A materialized parallel iterator over owned items.
#[derive(Debug)]
pub struct ParIter<I> {
    items: Vec<I>,
}

impl<I: Send> ParIter<I> {
    /// Maps each item through `f` (lazily; work happens at `collect`).
    pub fn map<R, F>(self, f: F) -> ParMap<I, F>
    where
        R: Send,
        F: Fn(I) -> R + Sync,
    {
        ParMap { items: self.items, f }
    }
}

/// The result of [`ParIter::map`], ready to collect in parallel.
#[derive(Debug)]
pub struct ParMap<I, F> {
    items: Vec<I>,
    f: F,
}

impl<I: Send, F> ParMap<I, F> {
    /// Applies the mapping across worker threads and gathers results in
    /// input order.
    pub fn collect<C>(self) -> C
    where
        F: Fn(I) -> <C as FromParallelResults>::Item + Sync,
        C: FromParallelResults,
        <C as FromParallelResults>::Item: Send,
    {
        let ParMap { items, f } = self;
        let n = items.len();
        if n == 0 {
            return C::from_ordered(Vec::new());
        }
        let threads = workers(n);
        if threads == 1 {
            return C::from_ordered(items.into_iter().map(f).collect());
        }
        let chunk = n.div_ceil(threads);
        let mut chunks: Vec<Vec<I>> = Vec::with_capacity(threads);
        let mut items = items;
        while !items.is_empty() {
            let rest = items.split_off(items.len().min(chunk));
            chunks.push(std::mem::replace(&mut items, rest));
        }
        let f = &f;
        let mut out = Vec::with_capacity(n);
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|c| scope.spawn(move || c.into_iter().map(f).collect::<Vec<_>>()))
                .collect();
            for h in handles {
                out.extend(h.join().expect("parallel worker panicked"));
            }
        });
        C::from_ordered(out)
    }
}

/// Collections buildable from ordered parallel results.
pub trait FromParallelResults {
    /// Element type.
    type Item;

    /// Builds the collection from results already in input order.
    fn from_ordered(items: Vec<Self::Item>) -> Self;
}

impl<R> FromParallelResults for Vec<R> {
    type Item = R;

    fn from_ordered(items: Vec<R>) -> Self {
        items
    }
}

/// Conversion into a parallel iterator over owned items.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;

    /// Converts `self`.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter { items: self.collect() }
    }
}

/// Conversion into a parallel iterator over references.
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a reference).
    type Item: Send + 'a;

    /// Borrowing conversion.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_over_ranges() {
        let out: Vec<usize> = (0usize..17).into_par_iter().map(|x| x + 1).collect();
        assert_eq!(out.len(), 17);
        assert_eq!(out[16], 17);
    }

    #[test]
    fn empty_input_is_fine() {
        let v: Vec<u32> = Vec::new();
        let out: Vec<u32> = v.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
    }
}
