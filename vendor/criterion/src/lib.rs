//! Offline stand-in for the `criterion` crate.
//!
//! Provides the slice of the criterion API the workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`], [`black_box`],
//! [`BenchmarkId`], `criterion_group!` / `criterion_main!` — with a simple
//! wall-clock measurement loop instead of criterion's statistics engine.
//!
//! Each benchmark runs a single warm-up iteration, then as many timed
//! iterations as fit in the configured measurement time (capped by sample
//! size), and prints the mean iteration time. Good enough to compare orders
//! of magnitude and to drive the repository's throughput comparisons; not a
//! replacement for real criterion runs when crates.io is reachable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { name: format!("{}/{}", name.into(), parameter) }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Runs closures under timing.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    max_samples: usize,
    measurement_time: Duration,
}

impl Bencher {
    /// Times `routine`, recording one sample per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up iteration.
        black_box(routine());
        let budget = Instant::now();
        while self.samples.len() < self.max_samples && budget.elapsed() < self.measurement_time {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
        if self.samples.is_empty() {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn mean(&self) -> Duration {
        let total: Duration = self.samples.iter().sum();
        total / self.samples.len().max(1) as u32
    }
}

/// A named group of benchmarks sharing measurement settings.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup {
    /// Sets the target number of samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up time (ignored by the stub: warm-up is one iteration).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets the measurement time budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            max_samples: self.sample_size,
            measurement_time: self.measurement_time,
        };
        f(&mut b);
        println!("{}/{}: {:?} mean over {} iterations", self.name, id, b.mean(), b.samples.len());
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finishes the group (no-op in the stub).
    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(5),
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a group function that runs each benchmark function in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("test");
        g.sample_size(3).measurement_time(Duration::from_millis(50));
        let mut runs = 0u32;
        g.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            });
        });
        g.finish();
        assert!(runs >= 2, "warm-up plus at least one timed iteration");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 42).to_string(), "f/42");
    }
}
