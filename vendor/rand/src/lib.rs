//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! this vendored stub provides the (small) slice of the `rand` 0.8 API the
//! workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer ranges and [`Rng::gen_bool`].
//!
//! The generator is SplitMix64 — statistically fine for synthetic workload
//! generation, deterministic for a given seed, but **not** the same stream
//! as the real `rand::rngs::StdRng` (ChaCha12). Workload seeds therefore
//! produce different (still deterministic) programs than they would with
//! the real crate, which is irrelevant to the experiments: every comparison
//! in the repository is within one build.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Types that can seed an RNG from a `u64` (subset of the real trait).
pub trait SeedableRng: Sized {
    /// Creates a generator seeded from `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// A sampleable range of values (subset of `rand::distributions::uniform`).
pub trait SampleRange<T> {
    /// Samples a value from the range using `rng`.
    fn sample(self, rng: &mut rngs::StdRng) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (start as i128 + v) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing generator trait (subset of the real `Rng`).
pub trait Rng {
    /// Returns the next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: AsMutStdRng,
    {
        range.sample(self.as_mut_std())
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        // 53 random bits give a uniform f64 in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

/// Helper allowing `SampleRange` to stay monomorphic over [`rngs::StdRng`].
pub trait AsMutStdRng {
    /// The concrete generator.
    fn as_mut_std(&mut self) -> &mut rngs::StdRng;
}

/// Concrete generators.
pub mod rngs {
    use super::{AsMutStdRng, Rng, SeedableRng};

    /// SplitMix64-backed stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl AsMutStdRng for StdRng {
        fn as_mut_std(&mut self) -> &mut StdRng {
            self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..2000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((300..700).contains(&hits), "p=0.25 of 2000 gave {hits}");
    }
}
