//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this stub implements
//! the subset of the proptest API the workspace's property tests use:
//!
//! * the [`proptest!`] macro with `name(arg in strategy, ...)` bindings,
//! * [`prelude::any`] for the integer primitives and `bool`,
//! * integer range strategies (`0u8..32`, `1usize..=8`),
//! * [`collection::vec`],
//! * `prop_assert!` / `prop_assert_eq!`.
//!
//! Unlike the real proptest there is no shrinking: each test runs a fixed
//! number of deterministic pseudo-random cases (seeded from the test name),
//! and a failing case panics with the ordinary assertion message. That is
//! enough to keep the property tests meaningful while staying dependency
//! free.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Number of cases each property test runs.
pub const CASES: u32 = 64;

/// Deterministic case generator used by the [`proptest!`] expansion.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator whose stream is a pure function of `name`.
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        let mut state = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for b in name.bytes() {
            state ^= u64::from(b);
            state = state.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state }
    }

    /// Next raw 64 bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A value generator (the stub's analogue of proptest's `Strategy`).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (start as i128 + v) as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The `any::<T>()` strategy.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Generates vectors of values drawn from `element`, with lengths in
    /// `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = Strategy::sample(&self.len, rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{Any, Arbitrary, Strategy};

    /// Returns the canonical strategy for `T`.
    #[must_use]
    pub fn any<T: crate::Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` item
/// becomes a `#[test]` that runs [`CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($(#[$meta:meta] fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            #[$meta]
            fn $name() {
                let mut __proptest_rng = $crate::TestRng::deterministic(stringify!($name));
                for __proptest_case in 0..$crate::CASES {
                    let _ = __proptest_case;
                    $(let $arg = $crate::Strategy::sample(&$strat, &mut __proptest_rng);)*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_are_respected(a in 3u8..10, b in 0usize..5) {
            prop_assert!((3..10).contains(&a));
            prop_assert!(b < 5);
        }

        #[test]
        fn any_bool_varies(x in any::<bool>()) {
            // Record that both values eventually appear across cases.
            prop_assert!(u8::from(x) <= 1);
        }

        #[test]
        fn vectors_obey_length_bounds(v in crate::collection::vec(any::<u32>(), 1..16)) {
            prop_assert!(!v.is_empty() && v.len() < 16);
        }
    }

    #[test]
    fn deterministic_rng_is_stable_per_name() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
